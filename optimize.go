package resistecc

import (
	"context"
	"fmt"

	"resistecc/internal/graph"
	"resistecc/internal/optimize"
	"resistecc/internal/pagerank"
)

// Problem selects the candidate edge set of the optimization problems of
// §VI: REMD restricts new edges to the source node, REM allows any missing
// edge.
type Problem int

const (
	// REMD is Problem 1 (direct edge addition to the source).
	REMD Problem = iota
	// REM is Problem 2 (arbitrary edge addition).
	REM
)

func (p Problem) internal() optimize.Problem {
	if p == REM {
		return optimize.REM
	}
	return optimize.REMD
}

// String implements fmt.Stringer.
func (p Problem) String() string { return p.internal().String() }

// Plan is an edge-addition schedule minimizing the resistance eccentricity
// of Source.
type Plan struct {
	Algorithm string
	Problem   Problem
	Source    int
	// Edges lists the chosen edges in pick order (may be shorter than the
	// requested budget if candidates ran out).
	Edges [][2]int
}

func convPlan(r *optimize.Result) *Plan {
	p := &Plan{Algorithm: r.Algorithm, Source: r.Source}
	if r.Problem == optimize.REM {
		p.Problem = REM
	}
	p.Edges = make([][2]int, len(r.Edges))
	for i, e := range r.Edges {
		p.Edges[i] = [2]int{e.U, e.V}
	}
	return p
}

func (p *Plan) internalEdges() []graph.Edge {
	es := make([]graph.Edge, len(p.Edges))
	for i, e := range p.Edges {
		es[i] = graph.Edge{U: e[0], V: e[1]}
	}
	return es
}

// Apply returns a copy of g with the plan's first k edges added
// (k < 0 applies all).
func (p *Plan) Apply(g *Graph, k int) (*Graph, error) {
	if k < 0 || k > len(p.Edges) {
		k = len(p.Edges)
	}
	out := g.Clone()
	for _, e := range p.Edges[:k] {
		if err := out.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("resistecc: applying plan edge (%d,%d): %w", e[0], e[1], err)
		}
	}
	return out, nil
}

// ExactTrajectory replays the plan and returns the exact c(s) after each
// prefix: element 0 is the unmodified graph, element i the value after i
// added edges. Costs O(n³ + k·n²); intended for evaluation, not for
// million-node graphs.
func (p *Plan) ExactTrajectory(g *Graph) ([]float64, error) {
	return optimize.ExactTrajectory(g.inner(), p.Source, p.internalEdges())
}

// OptimizeOptions configures the sketch-based optimizers.
type OptimizeOptions struct {
	// Sketch configures APPROXER (Epsilon required).
	Sketch SketchOptions
	// Hull configures the APPROXCH boundary the REM heuristics score
	// candidates on. The zero value derives θ and the seed from Sketch, the
	// same resolution FastIndex uses.
	Hull HullOptions
	// MaxCandidates caps the hull-pair candidates ChMinRecc/MinRecc score
	// per round (0 = the paper's uncapped O(l²) set).
	MaxCandidates int
}

func (o OptimizeOptions) internal() optimize.FastOptions {
	return optimize.FastOptions{
		Sketch:        o.Sketch.internal(),
		Hull:          o.Hull.internal(),
		MaxCandidates: o.MaxCandidates,
	}
}

// GreedyExact is the paper's SIMPLE greedy (Algorithm 4): each round adds
// the candidate edge minimizing the exact post-insertion c(s). Implemented
// with Sherman–Morrison pseudoinverse updates (O(n) per candidate after an
// O(n³) setup).
func GreedyExact(g *Graph, p Problem, s, k int) (*Plan, error) {
	r, err := optimize.Simple(g.inner(), p.internal(), s, k)
	if err != nil {
		return nil, err
	}
	return convPlan(r), nil
}

// Exhaustive computes the true optimum OPT-REMD / OPT-REM by enumerating all
// size-k candidate subsets. Exponential in k; for tiny graphs only.
// It returns the optimal plan and the optimal value of c(s).
func Exhaustive(g *Graph, p Problem, s, k int) (*Plan, float64, error) {
	r, c, err := optimize.Exhaustive(g.inner(), p.internal(), s, k)
	if err != nil {
		return nil, 0, err
	}
	return convPlan(r), c, nil
}

// FarMinRecc (Algorithm 5, REMD) repeatedly connects s to its sketched-
// farthest node. Õ(k·m/ε²). ctx cancels the per-round sketch rebuilds; the
// other sketch-based heuristics below thread it the same way.
func FarMinRecc(ctx context.Context, g *Graph, s, k int, opt OptimizeOptions) (*Plan, error) {
	r, err := optimize.FarMinRecc(ctx, g.inner(), s, k, opt.internal())
	if err != nil {
		return nil, err
	}
	return convPlan(r), nil
}

// CenMinRecc (Algorithm 6, REMD) sketches once and wires s to k centers
// chosen by farthest-first traversal. Õ(m/ε² + k·n/ε²) — the fastest
// heuristic, somewhat less effective than FarMinRecc (Figure 9/Table III).
func CenMinRecc(ctx context.Context, g *Graph, s, k int, opt OptimizeOptions) (*Plan, error) {
	r, err := optimize.CenMinRecc(ctx, g.inner(), s, k, opt.internal())
	if err != nil {
		return nil, err
	}
	return convPlan(r), nil
}

// ChMinRecc (Algorithm 8, REM) adds edges between convex-hull boundary
// nodes, scoring candidates with APPROXRECC. Õ(k·l²·m/ε²).
func ChMinRecc(ctx context.Context, g *Graph, s, k int, opt OptimizeOptions) (*Plan, error) {
	r, err := optimize.ChMinRecc(ctx, g.inner(), s, k, opt.internal())
	if err != nil {
		return nil, err
	}
	return convPlan(r), nil
}

// MinRecc (Algorithm 9, REM) unions ChMinRecc's hull-pair candidates with
// the direct edge to the farthest hull node and picks the better each round
// — the most effective heuristic in the paper's evaluation.
func MinRecc(ctx context.Context, g *Graph, s, k int, opt OptimizeOptions) (*Plan, error) {
	r, err := optimize.MinRecc(ctx, g.inner(), s, k, opt.internal())
	if err != nil {
		return nil, err
	}
	return convPlan(r), nil
}

// Baseline names the comparison strategies of §VIII-C.
type Baseline int

const (
	// BaselineDegree is DE-*: connect lowest-degree endpoints.
	BaselineDegree Baseline = iota
	// BaselinePageRank is PK-*: connect lowest-PageRank endpoints.
	BaselinePageRank
	// BaselinePath is PATH-*: connect longest-shortest-path endpoints.
	BaselinePath
	// BaselineRandom adds random admissible edges.
	BaselineRandom
)

// String implements fmt.Stringer.
func (b Baseline) String() string {
	switch b {
	case BaselineDegree:
		return "DE"
	case BaselinePageRank:
		return "PK"
	case BaselinePath:
		return "PATH"
	case BaselineRandom:
		return "RAND"
	default:
		return fmt.Sprintf("Baseline(%d)", int(b))
	}
}

// RunBaseline executes a §VIII-C baseline strategy. Seed is used only by
// BaselineRandom.
func RunBaseline(g *Graph, b Baseline, p Problem, s, k int, seed int64) (*Plan, error) {
	var (
		r   *optimize.Result
		err error
	)
	switch b {
	case BaselineDegree:
		r, err = optimize.Degree(g.inner(), p.internal(), s, k)
	case BaselinePageRank:
		r, err = optimize.PageRank(g.inner(), p.internal(), s, k, pagerank.Options{})
	case BaselinePath:
		r, err = optimize.Path(g.inner(), p.internal(), s, k, optimize.PathOptions{})
	case BaselineRandom:
		r, err = optimize.Random(g.inner(), p.internal(), s, k, seed)
	default:
		return nil, fmt.Errorf("resistecc: unknown baseline %v", b)
	}
	if err != nil {
		return nil, err
	}
	return convPlan(r), nil
}

package resistecc

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestIntegrationPipeline exercises the full user journey end to end:
// generate → persist → reload → LCC → exact index → fast index → optimize →
// re-query, with cross-validation of every stage against the exact oracle.
func TestIntegrationPipeline(t *testing.T) {
	// 1. Generate a realistic scale-free network with pendant periphery.
	g, err := ScaleFreeMixed(600, 1, 5, 0.4, 42)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist and reload through the edge-list format.
	path := filepath.Join(t.TempDir(), "net.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	lcc, _ := loaded.LargestComponent()
	if lcc.N() != g.N() || lcc.M() != g.M() {
		t.Fatalf("round trip changed the graph: %d/%d vs %d/%d", lcc.N(), lcc.M(), g.N(), g.M())
	}

	// 3. Exact ground truth.
	exact, err := NewExactIndex(context.Background(), lcc)
	if err != nil {
		t.Fatal(err)
	}
	exD := exact.Distribution()
	exSum := Summarize(exD)
	if exSum.Radius <= 0 || exSum.Diameter <= exSum.Radius {
		t.Fatalf("summary %+v", exSum)
	}

	// 4. FASTQUERY agrees within the sketch tolerance.
	fast, err := NewFastIndex(context.Background(), lcc, WithEpsilon(0.3), WithDim(192), WithSeed(42), WithMaxHullVertices(48))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := RelativeError(fast.Distribution(), exD)
	if err != nil {
		t.Fatal(err)
	}
	if sigma > 0.15 {
		t.Fatalf("pipeline sigma %.3f", sigma)
	}

	// 5. Pick the worst node and improve it with MinRecc; verify the exact
	// trajectory drops and the final value is re-confirmed by a fresh index.
	s := 0
	for v, c := range exD {
		if c > exD[s] {
			s = v
		}
	}
	plan, err := MinRecc(context.Background(), lcc, s, 4, OptimizeOptions{
		Sketch:        SketchOptions{Epsilon: 0.3, Dim: 96, Seed: 42},
		Hull:          HullOptions{MaxVertices: 16},
		MaxCandidates: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	traj, err := plan.ExactTrajectory(lcc)
	if err != nil {
		t.Fatal(err)
	}
	if traj[len(traj)-1] >= traj[0]*0.9 {
		t.Fatalf("MinRecc improved c(s) only from %g to %g", traj[0], traj[len(traj)-1])
	}
	augmented, err := plan.Apply(lcc, -1)
	if err != nil {
		t.Fatal(err)
	}
	reIdx, err := NewExactIndex(context.Background(), augmented)
	if err != nil {
		t.Fatal(err)
	}
	if got := reIdx.Eccentricity(s).Value; math.Abs(got-traj[len(traj)-1]) > 1e-8 {
		t.Fatalf("trajectory end %g vs recomputed %g", traj[len(traj)-1], got)
	}

	// 6. Monte-Carlo cross-check of one resistance value.
	u, v := s, exact.Eccentricity(s).Farthest
	mc, err := lcc.ResistanceMC(u, v, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Resistance(u, v)
	if rel := math.Abs(mc-want) / want; rel > 0.15 {
		t.Fatalf("MC r=%g vs exact %g (rel %.3f)", mc, want, rel)
	}
}

func TestSpectralPublic(t *testing.T) {
	g := CompleteGraph(10)
	kf, err := g.KirchhoffIndex()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kf-9) > 1e-8 { // Kf(K_n) = n−1
		t.Fatalf("Kf(K10)=%g", kf)
	}
	km, err := g.KemenyConstant()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(km-81.0/10) > 1e-8 { // (n−1)²/n
		t.Fatalf("K(K10)=%g", km)
	}
	ba, err := BarabasiAlbert(120, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	kfExact, err := ba.KirchhoffIndex()
	if err != nil {
		t.Fatal(err)
	}
	kfEst, err := ba.EstimateKirchhoffIndex(SpectralEstimateOptions{Probes: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(kfEst-kfExact) / kfExact; rel > 0.15 {
		t.Fatalf("Kf estimate off by %.3f", rel)
	}
	kmExact, err := ba.KemenyConstant()
	if err != nil {
		t.Fatal(err)
	}
	kmEst, err := ba.EstimateKemenyConstant(SpectralEstimateOptions{Probes: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(kmEst-kmExact) / kmExact; rel > 0.15 {
		t.Fatalf("Kemeny estimate off by %.3f", rel)
	}
	// Disconnected graphs are rejected.
	d := NewGraph(4)
	if _, err := d.KirchhoffIndex(); err == nil {
		t.Fatal("disconnected Kf should fail")
	}
}

package resistecc_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"resistecc"
)

// The star graph of Figure 1(c): the hub has resistance eccentricity 1,
// every leaf 2; the resistance radius is 1, the diameter 2, and the hub is
// the unique resistance-central node.
func ExampleNewExactIndex() {
	g := resistecc.StarGraph(6)
	idx, err := resistecc.NewExactIndex(context.Background(), g)
	if err != nil {
		panic(err)
	}
	hub := idx.Eccentricity(0)
	leaf := idx.Eccentricity(3)
	fmt.Printf("c(hub)=%.0f c(leaf)=%.0f\n", hub.Value, leaf.Value)
	sum := resistecc.Summarize(idx.Distribution())
	fmt.Printf("radius=%.0f diameter=%.0f center=%v\n", sum.Radius, sum.Diameter, sum.Center)
	// Output:
	// c(hub)=1 c(leaf)=2
	// radius=1 diameter=2 center=[0]
}

// Resistance distances on the path graph equal hop distances, so the
// eccentricity of an endpoint is n−1.
func ExampleNewFastIndex() {
	g := resistecc.PathGraph(64)
	idx, err := resistecc.NewFastIndex(context.Background(), g,
		resistecc.WithEpsilon(0.3), resistecc.WithDim(512),
		resistecc.WithSeed(1), resistecc.WithMaxHullVertices(16))
	if err != nil {
		panic(err)
	}
	v := idx.Eccentricity(0)
	rel := (v.Value - 63) / 63
	fmt.Printf("endpoint eccentricity within 10%% of exact: %v, farthest node %d\n",
		rel > -0.1 && rel < 0.1, v.Farthest)
	// Output:
	// endpoint eccentricity within 10% of exact: true, farthest node 63
}

// Adding an edge between the two ends of a path closes it into a cycle and
// halves the source's worst-case resistance — the Figure 3 phenomenon that
// motivates Problem 2 (REM).
func ExampleGreedyExact() {
	g := resistecc.PathGraph(6)
	source := 2 // the paper's node 3
	plan, err := resistecc.GreedyExact(g, resistecc.REM, source, 1)
	if err != nil {
		panic(err)
	}
	traj, err := plan.ExactTrajectory(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("picked %v: c(s) %.1f -> %.1f\n", plan.Edges, traj[0], traj[1])
	// Output:
	// picked [[0 5]]: c(s) 3.0 -> 1.5
}

// A DynamicIndex round-trips through a snapshot file: SaveSnapshot captures
// the graph, sketch matrix and hull boundary with per-section checksums, and
// LoadSnapshot restores an index that answers bit-identically — no solver
// work on the way back.
func ExampleDynamicIndex_SaveSnapshot() {
	g := resistecc.PathGraph(32)
	d, err := resistecc.NewDynamicIndex(context.Background(), g,
		resistecc.WithEpsilon(0.3), resistecc.WithDim(256), resistecc.WithSeed(1))
	if err != nil {
		panic(err)
	}
	defer d.Close()

	dir, err := os.MkdirTemp("", "resistecc-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.snap")
	if err := d.SaveSnapshot(path); err != nil {
		panic(err)
	}

	restored, err := resistecc.LoadSnapshot(path)
	if err != nil {
		panic(err)
	}
	defer restored.Close()
	before := d.Snapshot().Index.Eccentricity(0)
	after := restored.Snapshot().Index.Eccentricity(0)
	fmt.Printf("bit-identical after restore: %v\n", before.Value == after.Value)
	// Output:
	// bit-identical after restore: true
}

// Kirchhoff's matrix-tree theorem: the complete graph K5 has 5³ = 125
// spanning trees (Cayley's formula).
func ExampleGraph_CountSpanningTrees() {
	g := resistecc.CompleteGraph(5)
	count, err := g.CountSpanningTrees()
	if err != nil {
		panic(err)
	}
	fmt.Printf("τ(K5) = %.0f\n", count)
	// Output:
	// τ(K5) = 125
}

package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func tinyArgs(exp string) []string {
	return []string{
		"-exp", exp,
		"-scale", "0.02",
		"-largescale", "0.0004",
		"-dim", "24",
		"-k", "2",
		"-hullcap", "8",
		"-maxcand", "4",
		"-exactlimit", "1500",
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run(context.Background(), []string{"-badflag"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for exp, banner := range map[string]string{
		"table1":   "Table I",
		"fig2":     "Figure 2",
		"fig8":     "Figure 8",
		"ablation": "Ablation 4",
	} {
		var buf bytes.Buffer
		if err := run(context.Background(), tinyArgs(exp), &buf); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(buf.String(), banner) {
			t.Fatalf("%s output missing banner %q", exp, banner)
		}
	}
}

func TestRunTable2SmallCorpus(t *testing.T) {
	var buf bytes.Buffer
	args := append(tinyArgs("table2"), "-scale", "0.01")
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "EmailUN") {
		t.Fatalf("table2 output incomplete:\n%s", out)
	}
	// The asterisked networks are excluded without -large.
	if strings.Contains(out, "Soc-orkut") {
		t.Fatal("large networks should be excluded by default")
	}
}

func TestCorpusNamesValid(t *testing.T) {
	if len(smallTable2Corpus()) != 14 {
		t.Fatalf("small corpus should list the 14 non-asterisked networks, got %d", len(smallTable2Corpus()))
	}
}

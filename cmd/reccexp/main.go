// Command reccexp regenerates the tables and figures of the paper's
// evaluation on synthetic dataset proxies (see internal/dataset and
// DESIGN.md "Substitutions"). Each experiment prints the measured values
// next to the paper-reported ones where available.
//
// Usage:
//
//	reccexp -exp table1                  # Table I   (stats, phi, R)
//	reccexp -exp fig2                    # Figure 2  (distribution + Burr)
//	reccexp -exp table2 [-large]         # Table II  (EXACT vs FASTQUERY)
//	reccexp -exp fig7                    # Figure 7  (large-network dists)
//	reccexp -exp fig8                    # Figure 8  (heuristics vs OPT)
//	reccexp -exp fig9 [-large]           # Figure 9  (c(s) vs k)
//	reccexp -exp table3                  # Table III (optimizer runtimes)
//	reccexp -exp ablation                # DESIGN.md ablations 1-4
//	reccexp -exp all                     # everything above
//
// Scale flags trade fidelity for runtime; the defaults finish a full run in
// minutes on a laptop. Larger -scale/-largescale values approach the paper's
// sizes at correspondingly larger runtimes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"resistecc/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reccexp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("reccexp", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1|fig2|table2|fig7|fig8|fig9|table3|ablation|all")
	scale := fs.Float64("scale", 0.05, "proxy scale for small/mid networks")
	largeScale := fs.Float64("largescale", 0.002, "proxy scale for the 10^6-node networks")
	dim := fs.Int("dim", 0, "sketch dimension override (0 = 12/eps^2)")
	k := fs.Int("k", 20, "edge budget for fig9/table3")
	seed := fs.Int64("seed", 1, "seed for all randomness")
	hullCap := fs.Int("hullcap", 64, "max hull vertices (0 = certified hull)")
	maxCand := fs.Int("maxcand", 32, "hull-pair candidates scored per round")
	exactLimit := fs.Int("exactlimit", 4000, "largest n for EXACTQUERY")
	large := fs.Bool("large", false, "include the large-network variants (table2 corpus, fig9 panels i-l)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := experiments.Options{
		Scale:           *scale,
		LargeScale:      *largeScale,
		Dim:             *dim,
		K:               *k,
		Seed:            *seed,
		MaxHullVertices: *hullCap,
		MaxCandidates:   *maxCand,
		ExactLimit:      *exactLimit,
	}
	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }

	matched := false
	if want("table1") {
		matched = true
		if _, err := experiments.Table1(w, opt); err != nil {
			return fmt.Errorf("table1: %w", err)
		}
	}
	if want("fig2") {
		matched = true
		if _, err := experiments.Fig2(w, opt); err != nil {
			return fmt.Errorf("fig2: %w", err)
		}
	}
	if want("table2") {
		matched = true
		names := smallTable2Corpus()
		if *large {
			names = nil // nil = full corpus including the asterisked networks
		}
		if _, err := experiments.Table2(w, opt, names); err != nil {
			return fmt.Errorf("table2: %w", err)
		}
	}
	if want("fig7") {
		matched = true
		if _, err := experiments.Fig7(w, opt); err != nil {
			return fmt.Errorf("fig7: %w", err)
		}
	}
	if want("fig8") {
		matched = true
		if _, err := experiments.Fig8(ctx, w, opt); err != nil {
			return fmt.Errorf("fig8: %w", err)
		}
	}
	if want("fig9") {
		matched = true
		if _, err := experiments.Fig9(ctx, w, opt, nil, 5); err != nil {
			return fmt.Errorf("fig9: %w", err)
		}
		if *large {
			if _, err := experiments.Fig9Large(ctx, w, opt, 5); err != nil {
				return fmt.Errorf("fig9-large: %w", err)
			}
		}
	}
	if want("table3") {
		matched = true
		if _, err := experiments.Table3(ctx, w, opt); err != nil {
			return fmt.Errorf("table3: %w", err)
		}
	}
	if want("ablation") {
		matched = true
		if err := experiments.AblationHull(w, opt, nil); err != nil {
			return fmt.Errorf("ablation-hull: %w", err)
		}
		if err := experiments.AblationSketchDim(w, opt, "", nil); err != nil {
			return fmt.Errorf("ablation-dim: %w", err)
		}
		if err := experiments.AblationSolver(ctx, w, opt, ""); err != nil {
			return fmt.Errorf("ablation-solver: %w", err)
		}
		if err := experiments.AblationShermanMorrison(w, opt, 0); err != nil {
			return fmt.Errorf("ablation-sm: %w", err)
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// smallTable2Corpus is the default Table II selection: the non-asterisked
// networks, which admit the EXACTQUERY comparison column.
func smallTable2Corpus() []string {
	return []string{
		"Unicode-language", "EmailUN", "MusaeRU", "Bitcoinotc", "Politician",
		"Government", "Wiki-Vote", "MusaeENGB", "HepTh", "Cond-mat",
		"Musae-facebook", "HU", "HR", "Epinions",
	}
}

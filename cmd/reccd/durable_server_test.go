package main

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"resistecc"
)

// durableServer builds a server persisting into dir, over the same generated
// graph as testServer so restarts can reuse the directory.
func durableServer(t testing.TB, dir string) *server {
	t.Helper()
	return durableServerCfg(t, dir, nil)
}

// durableServerCfg is durableServer with a config hook (trace recording,
// drift thresholds, …) applied before construction.
func durableServerCfg(t testing.TB, dir string, mutate func(*serverConfig)) *server {
	t.Helper()
	g, err := resistecc.ScaleFreeMixed(120, 1, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	cfg.DataDir = dir
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := newServer(context.Background(), g, newIDMap(g.N(), nil, nil), g.N(), g.M(),
		[]resistecc.Option{
			resistecc.WithEpsilon(0.3), resistecc.WithDim(64),
			resistecc.WithSeed(5), resistecc.WithMaxHullVertices(24),
		}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestCheckpointEndpointRequiresDataDir(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	rec := do(t, h, http.MethodPost, "/v1/checkpoint", "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("checkpoint without -data-dir: status %d (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"not_durable"`) {
		t.Fatalf("wrong error code: %s", rec.Body.String())
	}
}

func TestDurableServerCheckpointAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	srv := durableServer(t, dir)
	h := testHandler(t, srv)
	if srv.recovery.Warm {
		t.Fatalf("first start claims warm: %+v", srv.recovery)
	}

	// A mutation lands in the WAL; an explicit checkpoint absorbs it.
	rec := do(t, h, http.MethodPost, "/v1/edges", `{"u":0,"v":100}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("add: status %d (%s)", rec.Code, rec.Body.String())
	}
	rec = do(t, h, http.MethodPost, "/v1/checkpoint", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: status %d (%s)", rec.Code, rec.Body.String())
	}
	body := decodeObj(t, rec)
	if body["checkpointed"] != true || body["walRecords"].(float64) != 0 {
		t.Fatalf("checkpoint response: %v", body)
	}
	wantGen := srv.current().dyn.Snapshot().Generation
	srv.close()

	// Restart over the same directory: warm, same generation, and the
	// durability surface shows up in /healthz and /metrics.
	srv2 := durableServer(t, dir)
	defer srv2.close()
	h2 := testHandler(t, srv2)
	if !srv2.recovery.Warm {
		t.Fatalf("restart was cold: %+v", srv2.recovery)
	}
	if got := srv2.current().dyn.Snapshot().Generation; got != wantGen {
		t.Fatalf("generation after warm restart: %d, want %d", got, wantGen)
	}
	health := decodeObj(t, get(t, h2, "/v1/healthz"))
	persist, ok := health["persist"].(map[string]any)
	if !ok || persist["warmStart"] != true {
		t.Fatalf("healthz persist block: %v", health["persist"])
	}
	metrics := get(t, h2, "/v1/metrics").Body.String()
	for _, want := range []string{
		"# TYPE reccd_persist_checkpoints_total counter",
		"reccd_persist_wal_records 0",
		"reccd_persist_snapshot_age_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

package main

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestConfigValidateRoleMatrix(t *testing.T) {
	writer := func() Config { return Config{Role: roleWriter, In: "g.txt"} }
	replica := func() Config { return Config{Role: roleReplica, Upstream: "http://w:8080"} }
	router := func() Config {
		return Config{Role: roleRouter, Upstream: "http://w:8080", Replicas: []string{"http://r:8081"}}
	}

	cases := []struct {
		name   string
		cfg    Config
		wantIs error // nil = valid
	}{
		{"writer ok", writer(), nil},
		{"replica ok", replica(), nil},
		{"router ok", router(), nil},
		{"unknown role", Config{Role: "observer"}, ErrBadRole},
		{"empty role", Config{}, ErrBadRole},
		{"writer without -in", Config{Role: roleWriter}, ErrMissingFlag},
		{"writer with -upstream", func() Config { c := writer(); c.Upstream = "http://x"; return c }(), ErrRoleConflict},
		{"writer with -replicas", func() Config { c := writer(); c.Replicas = []string{"http://x"}; return c }(), ErrRoleConflict},
		{"replica without -upstream", Config{Role: roleReplica}, ErrMissingFlag},
		{"replica with -in", func() Config { c := replica(); c.In = "g.txt"; return c }(), ErrRoleConflict},
		{"replica with -data-dir", func() Config { c := replica(); c.Server.DataDir = "/tmp/x"; return c }(), ErrRoleConflict},
		{"replica with -checkpoint-interval", func() Config { c := replica(); c.Server.CheckpointInterval = time.Minute; return c }(), ErrRoleConflict},
		{"replica with -replicas", func() Config { c := replica(); c.Replicas = []string{"http://x"}; return c }(), ErrRoleConflict},
		{"router without -upstream", Config{Role: roleRouter, Replicas: []string{"http://x"}}, ErrMissingFlag},
		{"router without -replicas", Config{Role: roleRouter, Upstream: "http://w"}, ErrMissingFlag},
		{"router with -in", func() Config { c := router(); c.In = "g.txt"; return c }(), ErrRoleConflict},
		{"router with -data-dir", func() Config { c := router(); c.Server.DataDir = "/tmp/x"; return c }(), ErrRoleConflict},
		{"router with -legacy-routes", func() Config { c := router(); c.Server.LegacyRoutes = true; return c }(), ErrRoleConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantIs == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.wantIs) {
				t.Fatalf("error %v, want errors.Is(%v)", err, tc.wantIs)
			}
		})
	}
}

// Legacy routes stay available on writers and replicas — only the router,
// which never had them, refuses the flag.
func TestConfigValidateLegacyRoutesOnIndexRoles(t *testing.T) {
	c := Config{Role: roleWriter, In: "g.txt"}
	c.Server.LegacyRoutes = true
	if err := c.Validate(); err != nil {
		t.Fatalf("writer with legacy routes: %v", err)
	}
	r := Config{Role: roleReplica, Upstream: "http://w:8080"}
	r.Server.LegacyRoutes = true
	if err := r.Validate(); err != nil {
		t.Fatalf("replica with legacy routes: %v", err)
	}
}

func TestSplitList(t *testing.T) {
	for raw, want := range map[string][]string{
		"":                      nil,
		"http://a":              {"http://a"},
		"http://a,http://b":     {"http://a", "http://b"},
		" http://a , http://b ": {"http://a", "http://b"},
		",,http://a,,":          {"http://a"},
	} {
		if got := splitList(raw); !reflect.DeepEqual(got, want) {
			t.Errorf("splitList(%q) = %v, want %v", raw, got, want)
		}
	}
}

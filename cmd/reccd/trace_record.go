package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"resistecc/internal/trace"
)

// The router has no index of its own, so it records through a response tee:
// each proxied 2xx answer is parsed with the same digest functions the
// backends use, making a router-recorded trace replayable against any
// backend (or a fresh same-seed index) exactly like a writer-recorded one.

// captureWriter tees the response status, body and headers for the trace
// middleware. Proxied bodies are small JSON documents, so buffering them is
// cheap relative to the proxy hop itself.
type captureWriter struct {
	http.ResponseWriter
	status int
	body   bytes.Buffer
}

func (cw *captureWriter) WriteHeader(status int) {
	if cw.status == 0 {
		cw.status = status
	}
	cw.ResponseWriter.WriteHeader(status)
}

func (cw *captureWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	cw.body.Write(p)
	return cw.ResponseWriter.Write(p)
}

// headerGeneration reads the X-Index-Generation stamp a backend put on the
// proxied response; 0 when absent or malformed (the record then carries an
// unverifiable generation, never a wrong one).
func (cw *captureWriter) headerGeneration() uint64 {
	gen, err := strconv.ParseUint(cw.Header().Get("X-Index-Generation"), 10, 64)
	if err != nil {
		return 0
	}
	return gen
}

// traceProxy wraps a proxy handler with trace recording. record is called
// only for 2xx responses — a trace holds operations that were answered, so
// replaying it against an equivalent deployment succeeds operation for
// operation.
func traceProxy(rec *trace.Recorder, next http.Handler,
	record func(rec *trace.Recorder, r *http.Request, cw *captureWriter)) http.Handler {
	if rec == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &captureWriter{ResponseWriter: w}
		next.ServeHTTP(cw, r)
		if cw.status >= 200 && cw.status < 300 {
			record(rec, r, cw)
		}
	})
}

// recordProxiedQuery captures a proxied GET /v1/eccentricity: the queried
// ids from the request, the digest from the response body.
func recordProxiedQuery(rec *trace.Recorder, r *http.Request, cw *captureWriter) {
	var args []int64
	raw := r.URL.Query().Get("node")
	for _, part := range strings.Split(raw, ",") {
		id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return // backend 2xx'd it, but don't record what we can't parse
		}
		args = append(args, id)
	}
	if len(args) == 0 {
		return
	}
	dig, err := trace.ParseQueryBody(cw.body.Bytes())
	if err != nil {
		return
	}
	op := trace.OpQuery
	if len(args) > 1 {
		op = trace.OpBatchQuery
	}
	rec.Record(op, cw.headerGeneration(), dig, args...)
}

// recordProxiedMutation captures a proxied edge add/remove, pulling u and v
// from the response body (the mutation response echoes them, saving a
// request-body tee).
func recordProxiedMutation(rec *trace.Recorder, r *http.Request, cw *captureWriter) {
	op := trace.OpAddEdge
	if r.Method == http.MethodDelete {
		op = trace.OpRemoveEdge
	}
	gen, dig, err := trace.ParseMutationBody(cw.body.Bytes())
	if err != nil {
		return
	}
	var echo struct {
		U int64 `json:"u"`
		V int64 `json:"v"`
	}
	if err := json.Unmarshal(cw.body.Bytes(), &echo); err != nil {
		return
	}
	rec.Record(op, gen, dig, echo.U, echo.V)
}

// recordProxiedControl captures a proxied rebuild or checkpoint: the
// verification unit is the generation the backend stamped on the response.
func recordProxiedControl(op trace.Op) func(*trace.Recorder, *http.Request, *captureWriter) {
	return func(rec *trace.Recorder, _ *http.Request, cw *captureWriter) {
		gen := cw.headerGeneration()
		rec.Record(op, gen, trace.DigestGen(gen))
	}
}

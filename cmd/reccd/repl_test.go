package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"resistecc/internal/obs"
)

// replSet is a full replication tier under test: one durable writer, two
// replicas tailing it, and a router spreading reads over them — each a real
// reccd server behind an httptest listener.
type replSet struct {
	writer     *server
	writerTS   *httptest.Server
	replicas   []*server
	replicaTSs []*httptest.Server
	router     *routerServer
	routerTS   *httptest.Server
	cancel     context.CancelFunc
}

// startReplica boots one replica against upstream and serves it. The fast
// poll keeps convergence waits short.
func startReplica(t testing.TB, ctx context.Context, upstream string) (*server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Role:         roleReplica,
		Upstream:     upstream,
		PollInterval: 20 * time.Millisecond,
		Server:       defaultConfig(),
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	srv, err := newReplicaServer(ctx, cfg)
	if err != nil {
		t.Fatalf("starting replica: %v", err)
	}
	ts := httptest.NewServer(srv.handler(log.New(io.Discard, "", 0)))
	return srv, ts
}

// startReplSet assembles writer + 2 replicas + router and tears the whole
// tier down at cleanup.
func startReplSet(t testing.TB) *replSet {
	t.Helper()
	return startReplSetCfg(t, nil)
}

// startReplSetCfg is startReplSet with a hook over the router's Config
// (trace recording, limits) applied before construction.
func startReplSetCfg(t testing.TB, mutateRouter func(*Config)) *replSet {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	rs := &replSet{cancel: cancel}
	t.Cleanup(func() { rs.teardown() })

	rs.writer = durableServer(t, t.TempDir())
	rs.writerTS = httptest.NewServer(rs.writer.handler(log.New(io.Discard, "", 0)))

	for i := 0; i < 2; i++ {
		srv, ts := startReplica(t, ctx, rs.writerTS.URL)
		rs.replicas = append(rs.replicas, srv)
		rs.replicaTSs = append(rs.replicaTSs, ts)
	}

	rcfg := Config{
		Role:         roleRouter,
		Upstream:     rs.writerTS.URL,
		Replicas:     []string{rs.replicaTSs[0].URL, rs.replicaTSs[1].URL},
		PollInterval: 20 * time.Millisecond,
		Server:       defaultConfig(),
	}
	if mutateRouter != nil {
		mutateRouter(&rcfg)
	}
	if err := rcfg.Validate(); err != nil {
		t.Fatal(err)
	}
	router, err := newRouterServer(ctx, rcfg)
	if err != nil {
		t.Fatalf("starting router: %v", err)
	}
	rs.router = router
	rs.routerTS = httptest.NewServer(rs.router.handler(log.New(io.Discard, "", 0)))
	return rs
}

func (rs *replSet) teardown() {
	if rs.routerTS != nil {
		rs.routerTS.Close()
	}
	if rs.router != nil {
		rs.router.close()
	}
	for _, ts := range rs.replicaTSs {
		ts.Close()
	}
	for _, srv := range rs.replicas {
		srv.close()
	}
	if rs.writerTS != nil {
		rs.writerTS.Close()
	}
	if rs.writer != nil {
		rs.writer.close()
	}
	rs.cancel()
}

// httpGet fetches url and returns status, body and the response header.
func httpGet(t testing.TB, url string, hdr map[string]string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// waitConverged blocks until the replica has applied the writer's sequence
// and matches its generation.
func waitConverged(t testing.TB, w *server, r *server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		wsv, rsv := w.current(), r.current()
		if rsv != nil &&
			rsv.dyn.Seq() == wsv.dyn.Seq() &&
			rsv.dyn.Snapshot().Generation == wsv.dyn.Snapshot().Generation {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica never converged: writer seq %d gen %d, replica %+v",
		w.current().dyn.Seq(), w.current().dyn.Snapshot().Generation, r.tailer.Stats())
}

// The replica serves bit-identical answers to the writer at the same
// generation: same eccentricities, same resistances, same summary, byte for
// byte — the follower never rebuilds, so its state is a pure function of the
// shipped snapshot plus the applied WAL.
func TestReplicaBitIdenticalToWriter(t *testing.T) {
	rs := startReplSet(t)
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}
	paths := []string{
		"/v1/eccentricity?node=0,7,33,119",
		"/v1/resistance?u=0&v=64",
		"/v1/summary",
	}
	for _, p := range paths {
		wCode, wBody, wHdr := httpGet(t, rs.writerTS.URL+p, nil)
		if wCode != http.StatusOK {
			t.Fatalf("writer %s: %d (%s)", p, wCode, wBody)
		}
		for i, ts := range rs.replicaTSs {
			rCode, rBody, rHdr := httpGet(t, ts.URL+p, nil)
			if rCode != http.StatusOK {
				t.Fatalf("replica %d %s: %d (%s)", i, p, rCode, rBody)
			}
			if rBody != wBody {
				t.Fatalf("replica %d diverges on %s:\n%s\nvs writer\n%s", i, p, rBody, wBody)
			}
			if rg, wg := rHdr.Get("X-Index-Generation"), wHdr.Get("X-Index-Generation"); rg != wg {
				t.Fatalf("replica %d generation %s, writer %s", i, rg, wg)
			}
		}
	}
}

// Mutations through the router land on the writer, replicas converge, and
// X-Min-Generation enforces read-your-writes: a read carrying the mutation's
// generation is never answered by a backend below it.
func TestReplSetMutationConvergence(t *testing.T) {
	rs := startReplSet(t)
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}

	// Replicas and the router refuse direct writes with the typed error.
	for i, ts := range rs.replicaTSs {
		resp, err := http.Post(ts.URL+"/v1/edges", "application/json", strings.NewReader(`{"u":0,"v":100}`))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden || !strings.Contains(string(b), `"not_writer"`) {
			t.Fatalf("replica %d accepted a mutation: %d (%s)", i, resp.StatusCode, b)
		}
	}

	// Through the router the same mutation reaches the writer.
	resp, err := http.Post(rs.routerTS.URL+"/v1/edges", "application/json", strings.NewReader(`{"u":0,"v":100}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation via router: %d (%s)", resp.StatusCode, b)
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Index-Generation"), 10, 64)
	if err != nil || gen == 0 {
		t.Fatalf("mutation response generation header %q", resp.Header.Get("X-Index-Generation"))
	}

	// Read-your-writes: every routed read at the mutation's floor answers
	// from a generation at least that new.
	for i := 0; i < 20; i++ {
		code, body, hdr := httpGet(t, rs.routerTS.URL+fmt.Sprintf("/v1/eccentricity?node=%d", i),
			map[string]string{"X-Min-Generation": strconv.FormatUint(gen, 10)})
		if code != http.StatusOK {
			t.Fatalf("routed read %d: %d (%s)", i, code, body)
		}
		got, err := strconv.ParseUint(hdr.Get("X-Index-Generation"), 10, 64)
		if err != nil || got < gen {
			t.Fatalf("routed read %d served generation %q below floor %d (by %s)",
				i, hdr.Get("X-Index-Generation"), gen, hdr.Get("X-Served-By"))
		}
	}

	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}
	// After convergence replicas serve the post-mutation state byte-identically.
	_, wBody, _ := httpGet(t, rs.writerTS.URL+"/v1/eccentricity?node=0,100", nil)
	for i, ts := range rs.replicaTSs {
		_, rBody, _ := httpGet(t, ts.URL+"/v1/eccentricity?node=0,100", nil)
		if rBody != wBody {
			t.Fatalf("replica %d diverges after mutation:\n%s\nvs\n%s", i, rBody, wBody)
		}
	}
}

// A writer rebuild plus checkpoint moves the writer to a state the replicas
// cannot reach by tailing alone; the caught-up generation-mismatch rule makes
// them re-base on the new snapshot.
func TestReplSetResyncsAfterWriterRebuild(t *testing.T) {
	rs := startReplSet(t)
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}
	resyncsBefore := rs.replicas[0].tailer.Stats().Resyncs

	// Force a rebuild and persist it: the writer's generation moves without
	// any WAL records to tail.
	resp, err := http.Post(rs.writerTS.URL+"/v1/rebuild", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := rs.writer.current().dyn.WaitIdle(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(rs.writerTS.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}
	if after := rs.replicas[0].tailer.Stats().Resyncs; after <= resyncsBefore {
		t.Fatalf("expected a resync after rebuild+checkpoint (resyncs %d -> %d)", resyncsBefore, after)
	}
	_, wBody, _ := httpGet(t, rs.writerTS.URL+"/v1/summary", nil)
	for i, ts := range rs.replicaTSs {
		_, rBody, _ := httpGet(t, ts.URL+"/v1/summary", nil)
		if rBody != wBody {
			t.Fatalf("replica %d diverges after resync:\n%s\nvs\n%s", i, rBody, wBody)
		}
	}
}

// Killing a replica mid-traffic never surfaces a 5xx through the router: the
// health loop ejects it and in-flight retries move to the next candidate. A
// restarted replica rejoins and serves again.
func TestReplSetSurvivesReplicaFailure(t *testing.T) {
	rs := startReplSet(t)
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}

	// Kill replica 0 without warning: its listener drops connections.
	rs.replicaTSs[0].Close()
	rs.replicas[0].close()

	// Every routed read during and after the failure must answer 200 — the
	// router retries onto the surviving replica or the writer.
	for i := 0; i < 50; i++ {
		code, body, _ := httpGet(t, rs.routerTS.URL+fmt.Sprintf("/v1/eccentricity?node=%d", i%120), nil)
		if code >= 500 {
			t.Fatalf("request %d: %d (%s) during replica failure", i, code, body)
		}
		if code != http.StatusOK {
			t.Fatalf("request %d: %d (%s)", i, code, body)
		}
	}

	// A fresh replica (new process, same upstream) rejoins and converges;
	// swapping it into the dead one's slot lets teardown own its lifetime.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, ts := startReplica(t, ctx, rs.writerTS.URL)
	rs.replicas[0], rs.replicaTSs[0] = srv, ts
	waitConverged(t, rs.writer, srv)
	code, body, _ := httpGet(t, ts.URL+"/v1/eccentricity?node=0", nil)
	if code != http.StatusOK {
		t.Fatalf("restarted replica: %d (%s)", code, body)
	}
	_, wBody, _ := httpGet(t, rs.writerTS.URL+"/v1/eccentricity?node=0", nil)
	if body != wBody {
		t.Fatalf("restarted replica diverges:\n%s\nvs\n%s", body, wBody)
	}
}

// The replication status endpoint reports each role's view of the tier.
func TestReplStatusEndpoints(t *testing.T) {
	rs := startReplSet(t)
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}
	_, body, _ := httpGet(t, rs.writerTS.URL+"/v1/repl/status", nil)
	if !strings.Contains(body, `"role":"writer"`) || !strings.Contains(body, `"source"`) {
		t.Fatalf("writer status: %s", body)
	}
	_, body, _ = httpGet(t, rs.replicaTSs[0].URL+"/v1/repl/status", nil)
	if !strings.Contains(body, `"role":"replica"`) || !strings.Contains(body, `"tail"`) {
		t.Fatalf("replica status: %s", body)
	}
	code, body, _ := httpGet(t, rs.routerTS.URL+"/v1/healthz", nil)
	if code != http.StatusOK || !strings.Contains(body, `"role":"router"`) {
		t.Fatalf("router health: %d (%s)", code, body)
	}
}

// TestReplLagGaugeRetired pins the deprecation of the unsuffixed repl_lag
// gauge: by default a replica exports only the canonical repl_lag_seq, and
// the legacy alias reappears solely under -legacy-routes — the same switch
// and deprecation window as the pre-v1 URL aliases.
func TestReplLagGaugeRetired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	writer := durableServer(t, t.TempDir())
	defer writer.close()
	writerTS := httptest.NewServer(writer.handler(log.New(io.Discard, "", 0)))
	defer writerTS.Close()

	srv, ts := startReplica(t, ctx, writerTS.URL)
	defer ts.Close()
	defer srv.close()
	_, metrics, _ := httpGet(t, ts.URL+"/v1/metrics", nil)
	if !strings.Contains(metrics, "# TYPE reccd_repl_lag_seq gauge") {
		t.Fatalf("canonical repl_lag_seq gauge missing:\n%s", metrics)
	}
	// The space after the name excludes repl_lag_seq's own lines but still
	// catches both the "# TYPE reccd_repl_lag gauge" header and any sample.
	if strings.Contains(metrics, "reccd_repl_lag ") {
		t.Fatalf("retired repl_lag alias exported without -legacy-routes:\n%s", metrics)
	}

	cfg := Config{
		Role:         roleReplica,
		Upstream:     writerTS.URL,
		PollInterval: 20 * time.Millisecond,
		Server:       defaultConfig(),
	}
	cfg.Server.LegacyRoutes = true
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	legacy, err := newReplicaServer(ctx, cfg)
	if err != nil {
		t.Fatalf("starting legacy replica: %v", err)
	}
	defer legacy.close()
	legacyTS := httptest.NewServer(legacy.handler(log.New(io.Discard, "", 0)))
	defer legacyTS.Close()
	_, metrics, _ = httpGet(t, legacyTS.URL+"/v1/metrics", nil)
	for _, want := range []string{
		"# TYPE reccd_repl_lag_seq gauge",
		"# TYPE reccd_repl_lag gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("legacy replica metrics missing %q:\n%s", want, metrics)
		}
	}
}

// envelopeOf decodes body as the canonical error envelope, failing the test
// when either field is empty.
func envelopeOf(t *testing.T, status int, body string) obs.ErrorEnvelope {
	t.Helper()
	var env obs.ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("non-2xx body (%d) is not the error envelope: %v (%s)", status, err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("non-2xx body (%d) missing code/message: %s", status, body)
	}
	return env
}

// TestReplEnvelopeOnEveryNon2xx pins the error-envelope contract for the
// router and replica roles: unknown paths, wrong methods, refused writes,
// not-yet-synced reads and a degraded router health check all answer with
// {"error":{"code":…,"message":…}} — the same shape the writer serves.
func TestReplEnvelopeOnEveryNon2xx(t *testing.T) {
	rs := startReplSet(t)
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}

	// Router: mux-produced 404 and 405 are rewritten into the envelope.
	code, body, _ := httpGet(t, rs.routerTS.URL+"/v1/nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown router path: %d (%s)", code, body)
	}
	if env := envelopeOf(t, code, body); env.Error.Code != "not_found" {
		t.Fatalf("router 404 code %q", env.Error.Code)
	}
	resp, err := http.Post(rs.routerTS.URL+"/v1/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz via router: %d (%s)", resp.StatusCode, b)
	}
	if env := envelopeOf(t, resp.StatusCode, string(b)); env.Error.Code != "method_not_allowed" {
		t.Fatalf("router 405 code %q", env.Error.Code)
	}

	// Replica: refused mutation (403 not_writer) carries the envelope.
	resp, err = http.Post(rs.replicaTSs[0].URL+"/v1/edges", "application/json", strings.NewReader(`{"u":0,"v":1}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica mutation: %d (%s)", resp.StatusCode, b)
	}
	if env := envelopeOf(t, resp.StatusCode, string(b)); env.Error.Code != "not_writer" {
		t.Fatalf("replica 403 code %q", env.Error.Code)
	}
}

// TestRouterDegradedHealthEnvelope boots a router whose backends do not
// exist: the 503 degraded health answer must carry the error envelope next
// to its per-backend diagnostics.
func TestRouterDegradedHealthEnvelope(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Role:         roleRouter,
		Upstream:     "http://127.0.0.1:1",
		Replicas:     []string{"http://127.0.0.1:1"},
		PollInterval: time.Hour, // backends start unhealthy; no poll needed
		Server:       defaultConfig(),
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	router, err := newRouterServer(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer router.close()
	ts := httptest.NewServer(router.handler(log.New(io.Discard, "", 0)))
	defer ts.Close()

	code, body, _ := httpGet(t, ts.URL+"/v1/healthz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded router health: %d (%s)", code, body)
	}
	env := envelopeOf(t, code, body)
	if env.Error.Code != "degraded" {
		t.Fatalf("degraded health code %q", env.Error.Code)
	}
	// The diagnostics ride along in the same body.
	if !strings.Contains(body, `"replicas"`) || !strings.Contains(body, `"status":"degraded"`) {
		t.Fatalf("degraded health lost its diagnostics: %s", body)
	}
}

package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"resistecc"
	"resistecc/internal/trace"
)

// identityIDs is the toExternal mapping of the generated test graph: the
// servers under test are built with newIDMap(n, nil, nil), so external ids
// equal internal indices.
func identityIDs(n int) []int64 {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}

// traceTestIndex builds a fresh replay target with the exact build options
// the test servers use — determinism means this index must answer every
// recorded operation bit-identically.
func traceTestIndex(t *testing.T) *resistecc.DynamicIndex {
	t.Helper()
	g, err := resistecc.ScaleFreeMixed(120, 1, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := resistecc.NewDynamicIndex(context.Background(), g,
		resistecc.WithEpsilon(0.3), resistecc.WithDim(64),
		resistecc.WithSeed(5), resistecc.WithMaxHullVertices(24),
		resistecc.WithDriftThreshold(100))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestTraceRecordReplayRoundTrip is the round-trip determinism contract:
// a mixed workload recorded through the serving layer replays bit-exactly —
// every generation and digest — against a fresh index built from the same
// graph and seeds, both in-process and over HTTP against a second server.
func TestTraceRecordReplayRoundTrip(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "ops.trc")
	// Drift rebuilds are asynchronous; a high threshold keeps the recorded
	// run serially deterministic, matching how the replayer re-executes it.
	srv := durableServerCfg(t, t.TempDir(), func(cfg *serverConfig) {
		cfg.TraceOut = tracePath
		cfg.TraceSync = 8
		cfg.DriftThreshold = 100
	})
	h := srv.handler(log.New(io.Discard, "", 0))

	type step struct {
		method, url, body string
		wantStatus        int
		op                trace.Op
	}
	steps := []step{
		{http.MethodGet, "/v1/eccentricity?node=3", "", 200, trace.OpQuery},
		{http.MethodGet, "/v1/eccentricity?node=0,7,33,119", "", 200, trace.OpBatchQuery},
		{http.MethodPost, "/v1/edges", `{"u":0,"v":100}`, 200, trace.OpAddEdge},
		{http.MethodGet, "/v1/eccentricity?node=0,100", "", 200, trace.OpBatchQuery},
		{http.MethodPost, "/v1/edges", `{"u":5,"v":80}`, 200, trace.OpAddEdge},
		{http.MethodDelete, "/v1/edges?u=0&v=100", "", 200, trace.OpRemoveEdge},
		{http.MethodPost, "/v1/rebuild", "", 202, trace.OpRebuild},
		{http.MethodGet, "/v1/eccentricity?node=7", "", 200, trace.OpQuery},
		{http.MethodPost, "/v1/checkpoint", "", 200, trace.OpCheckpoint},
		{http.MethodGet, "/v1/eccentricity?node=42,3", "", 200, trace.OpBatchQuery},
	}
	wantByOp := map[trace.Op]int{}
	for _, s := range steps {
		rec := do(t, h, s.method, s.url, s.body)
		if rec.Code != s.wantStatus {
			t.Fatalf("%s %s: status %d (%s)", s.method, s.url, rec.Code, rec.Body.String())
		}
		wantByOp[s.op]++
		if s.op == trace.OpRebuild {
			// The recorded run is serial: the rebuild finishes before the
			// next operation, exactly as replay will execute it.
			if err := srv.current().dyn.WaitIdle(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.close() // flushes and fsyncs the recorder

	recs, info, err := trace.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != len(steps) || info.TornBytes != 0 {
		t.Fatalf("recorded trace: %+v, want %d records and no torn tail", info, len(steps))
	}
	for op, want := range wantByOp {
		if got := info.ByOp[op]; got != want {
			t.Fatalf("recorded %d %s ops, want %d", got, op, want)
		}
	}
	for _, r := range recs {
		if r.Gen == 0 || r.Digest == 0 {
			t.Fatalf("record %d (%s) is unverified: gen %d digest %d", r.Seq, r.Op, r.Gen, r.Digest)
		}
	}

	// In-process replay against a fresh same-seed index: bit-exact.
	d := traceTestIndex(t)
	rep, err := trace.Replay(context.Background(), recs, resistecc.TraceExecutor(d, identityIDs(120)), trace.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("local replay diverged: %+v", rep)
	}
	if rep.Checked != len(recs) || rep.Skipped != 0 {
		t.Fatalf("local replay checked %d of %d digests (skipped %d)", rep.Checked, len(recs), rep.Skipped)
	}

	// HTTP replay against a second fresh server: the live surface reproduces
	// the same bits, rebuild completion observed through /v1/healthz.
	srv2 := durableServerCfg(t, t.TempDir(), func(cfg *serverConfig) {
		cfg.DriftThreshold = 100
	})
	defer srv2.close()
	ts := httptest.NewServer(srv2.handler(log.New(io.Discard, "", 0)))
	defer ts.Close()
	rep2, err := trace.Replay(context.Background(), recs, &trace.HTTPExecutor{Base: ts.URL}, trace.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Fatalf("HTTP replay diverged: %+v", rep2)
	}
	if rep2.Checked != len(recs) {
		t.Fatalf("HTTP replay checked %d of %d digests", rep2.Checked, len(recs))
	}
}

// TestTraceSmokeReplicatedLoad drives a generated open-loop workload through
// the router of a full replica set: zero transport errors, zero 5xx, both
// replicas converge to the writer's generation afterwards, and the router's
// own -trace-out recorded the proxied traffic. This is the capacity smoke CI
// runs via make trace-smoke.
func TestTraceSmokeReplicatedLoad(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "router.trc")
	rs := startReplSetCfg(t, func(cfg *Config) {
		cfg.Server.TraceOut = tracePath
	})
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}

	w := trace.Workload{
		Nodes: 120, Ops: 400, Seed: 9,
		MaxBatch: 4, MutationRate: 0.05, RemoveFraction: 0.25,
		CheckpointEvery: 100,
	}
	recs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Concurrency stays well under MaxInFlight (128): shed load would be a
	// 503 and fail the zero-5xx assertion below.
	rep, err := trace.RunLoad(context.Background(), recs, rs.routerTS.URL,
		trace.LoadOptions{Concurrency: 32, AsFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServerErrors != 0 || rep.Errors != 0 {
		t.Fatalf("load run: %d transport errors, %d 5xx answers (%+v)", rep.Errors, rep.ServerErrors, rep)
	}
	if rep.Ops != len(recs) {
		t.Fatalf("dispatched %d of %d ops", rep.Ops, len(recs))
	}
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}
	if st := rs.router.rec.Stats(); st.Records == 0 || st.WriteFailures != 0 {
		t.Fatalf("router recorder stats: %+v", st)
	}
	t.Logf("trace smoke: %d ops in %s (%.0f req/s), p50 %s p99 %s, %d rejected",
		rep.Ops, rep.Duration, rep.AchievedRate, rep.P50, rep.P99, rep.Rejected)
}

// TestTraceMetricsSurfaced pins the observability satellite: the replica
// exports the canonical repl_lag_seq gauge, the router exports per-backend
// generation gauges, and a recording server exports trace counters.
func TestTraceMetricsSurfaced(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "router.trc")
	rs := startReplSetCfg(t, func(cfg *Config) {
		cfg.Server.TraceOut = tracePath
	})
	for _, r := range rs.replicas {
		waitConverged(t, rs.writer, r)
	}
	// One proxied query so the router has recorded at least one operation.
	code, body, _ := httpGet(t, rs.routerTS.URL+"/v1/eccentricity?node=0", nil)
	if code != http.StatusOK {
		t.Fatalf("routed query: %d (%s)", code, body)
	}

	_, metrics, _ := httpGet(t, rs.replicaTSs[0].URL+"/v1/metrics", nil)
	for _, want := range []string{
		"# TYPE reccd_repl_lag_seq gauge",
		"reccd_repl_lag_seq 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("replica metrics missing %q:\n%s", want, metrics)
		}
	}

	_, metrics, _ = httpGet(t, rs.routerTS.URL+"/v1/metrics", nil)
	for _, want := range []string{
		`reccd_router_backend_generation{backend="0"}`,
		`reccd_router_backend_generation{backend="1"}`,
		"reccd_trace_records_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("router metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestTraceRecorderAcrossRoles asserts a replica with -trace-out records its
// read traffic too — capacity traces can be captured at any tier.
func TestTraceRecorderAcrossRoles(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "replica.trc")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	writer := durableServer(t, t.TempDir())
	defer writer.close()
	writerTS := httptest.NewServer(writer.handler(log.New(io.Discard, "", 0)))
	defer writerTS.Close()

	cfg := Config{
		Role:         roleReplica,
		Upstream:     writerTS.URL,
		PollInterval: 20 * time.Millisecond,
		Server:       defaultConfig(),
	}
	cfg.Server.TraceOut = tracePath
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	replica, err := newReplicaServer(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(replica.handler(log.New(io.Discard, "", 0)))
	waitConverged(t, writer, replica)
	for i := 0; i < 5; i++ {
		code, body, _ := httpGet(t, ts.URL+fmt.Sprintf("/v1/eccentricity?node=%d", i), nil)
		if code != http.StatusOK {
			t.Fatalf("replica query %d: %d (%s)", i, code, body)
		}
	}
	ts.Close()
	replica.close()

	recs, info, err := trace.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 5 || info.ByOp[trace.OpQuery] != 5 {
		t.Fatalf("replica trace: %+v", info)
	}
	// Replica-recorded queries replay bit-exactly like writer-recorded ones.
	d := traceTestIndex(t)
	rep, err := trace.Replay(context.Background(), recs, resistecc.TraceExecutor(d, identityIDs(120)), trace.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Checked != 5 {
		t.Fatalf("replay of replica trace: %+v", rep)
	}
}

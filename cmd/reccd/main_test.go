package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"resistecc"
)

func testServer(t *testing.T) *server {
	t.Helper()
	g, err := resistecc.ScaleFreeMixed(120, 1, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(g, resistecc.SketchOptions{
		Epsilon: 0.3, Dim: 64, Seed: 5, MaxHullVertices: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func get(t *testing.T, h http.Handler, url string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if strings.HasPrefix(strings.TrimSpace(rec.Body.String()), "{") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON from %s: %v (%s)", url, err, rec.Body.String())
		}
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	rec, body := get(t, srv.mux(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body["status"] != "ok" || body["nodes"].(float64) != 120 {
		t.Fatalf("health %v", body)
	}
	if body["hullBoundary"].(float64) <= 0 {
		t.Fatal("missing hull metadata")
	}
}

func TestEccentricityEndpoint(t *testing.T) {
	srv := testServer(t)
	mux := srv.mux()
	rec, body := get(t, mux, "/eccentricity?node=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["node"].(float64) != 0 || body["eccentricity"].(float64) <= 0 {
		t.Fatalf("body %v", body)
	}
	// Batch query returns an array.
	rec, _ = get(t, mux, "/eccentricity?node=0,5,10")
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec.Code)
	}
	var arr []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &arr); err != nil || len(arr) != 3 {
		t.Fatalf("batch body %s", rec.Body.String())
	}
	// Errors.
	for _, bad := range []string{"/eccentricity", "/eccentricity?node=abc", "/eccentricity?node=99999"} {
		rec, _ := get(t, mux, bad)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d", bad, rec.Code)
		}
	}
}

func TestResistanceEndpoint(t *testing.T) {
	srv := testServer(t)
	mux := srv.mux()
	rec, body := get(t, mux, "/resistance?u=0&v=10")
	if rec.Code != http.StatusOK || body["resistance"].(float64) <= 0 {
		t.Fatalf("status %d body %v", rec.Code, body)
	}
	rec, _ = get(t, mux, "/resistance?u=0")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing v: %d", rec.Code)
	}
	rec, _ = get(t, mux, "/resistance?u=0&v=100000")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("range: %d", rec.Code)
	}
}

func TestSummaryEndpoint(t *testing.T) {
	srv := testServer(t)
	rec, body := get(t, srv.mux(), "/summary")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	radius := body["radius"].(float64)
	diameter := body["diameter"].(float64)
	if radius <= 0 || diameter < radius {
		t.Fatalf("summary %v", body)
	}
	// Hull-pair diameter approximates the distribution diameter.
	hullDiam := body["hullDiameter"].(float64)
	if hullDiam < 0.5*diameter || hullDiam > 1.5*diameter {
		t.Fatalf("hull diameter %g vs %g", hullDiam, diameter)
	}
}

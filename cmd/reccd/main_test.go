package main

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"resistecc"
	"resistecc/internal/obs"
)

// testServer builds a server over a connected generated graph (identity id
// mapping) with a small batch cap so limits are testable.
func testServer(t *testing.T) *server {
	t.Helper()
	g, err := resistecc.ScaleFreeMixed(120, 1, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	cfg.MaxBatch = 8
	srv, err := newServer(context.Background(), g, newIDMap(g.N(), nil, nil), g.N(), g.M(),
		[]resistecc.Option{
			resistecc.WithEpsilon(0.3), resistecc.WithDim(64),
			resistecc.WithSeed(5), resistecc.WithMaxHullVertices(24),
		}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	return srv
}

func testHandler(t *testing.T, srv *server) http.Handler {
	t.Helper()
	return srv.handler(log.New(io.Discard, "", 0))
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func decodeObj(t *testing.T, rec *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON object: %v (%s)", err, rec.Body.String())
	}
	return body
}

func decodeArr(t *testing.T, rec *httptest.ResponseRecorder) []map[string]any {
	t.Helper()
	var body []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON array: %v (%s)", err, rec.Body.String())
	}
	return body
}

// decodeErrEnvelope asserts the structured error contract: every non-2xx
// body is {"error":{"code":…,"message":…}} with both fields non-empty.
func decodeErrEnvelope(t *testing.T, rec *httptest.ResponseRecorder) (code, msg string) {
	t.Helper()
	var body obs.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad error envelope: %v (%s)", err, rec.Body.String())
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("error envelope missing code/message: %s", rec.Body.String())
	}
	return body.Error.Code, body.Error.Message
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	rec := get(t, testHandler(t, srv), "/v1/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := decodeObj(t, rec)
	if body["status"] != "ok" || body["nodes"].(float64) != 120 {
		t.Fatalf("health %v", body)
	}
	if body["hullBoundary"].(float64) <= 0 {
		t.Fatal("missing hull metadata")
	}
	// Build statistics from the solver/sketch/hull layers must be threaded
	// through.
	if body["solverIters"].(float64) <= 0 {
		t.Fatalf("missing solver stats: %v", body)
	}
	if body["sketchDim"].(float64) != 64 || body["maxBatch"].(float64) != 8 {
		t.Fatalf("config echo wrong: %v", body)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Fatal("missing X-Request-Id")
	}
	if rec.Header().Get("X-Index-Generation") != "1" {
		t.Fatalf("generation header %q, want 1", rec.Header().Get("X-Index-Generation"))
	}
	if body["generation"].(float64) != 1 {
		t.Fatalf("lifecycle fields missing from healthz: %v", body)
	}
}

// The pre-v1 unversioned aliases are retired: by default they 404 with the
// structured envelope; -legacy-routes re-mounts them answering identically
// to /v1 but stamped with a Deprecation header naming the successor.
func TestLegacyRoutesGated(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	for _, path := range []string{"/healthz", "/eccentricity?node=0", "/summary", "/metrics"} {
		rec := get(t, h, path)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s should be retired by default: status %d", path, rec.Code)
		}
		if code, _ := decodeErrEnvelope(t, rec); code != "not_found" {
			t.Fatalf("%s: code %q", path, code)
		}
	}

	srv.cfg.LegacyRoutes = true
	h = testHandler(t, srv)
	for _, path := range []string{
		"/healthz", "/eccentricity?node=0,7", "/resistance?u=0&v=5", "/summary",
	} {
		legacy, v1 := get(t, h, path), get(t, h, "/v1"+path)
		if legacy.Code != http.StatusOK || v1.Code != http.StatusOK {
			t.Fatalf("%s: legacy %d, v1 %d", path, legacy.Code, v1.Code)
		}
		if legacy.Body.String() != v1.Body.String() {
			t.Fatalf("%s: body differs between route families:\n%s\nvs\n%s",
				path, legacy.Body.String(), v1.Body.String())
		}
		if legacy.Header().Get("Deprecation") != "true" {
			t.Fatalf("%s: missing Deprecation header", path)
		}
		link := legacy.Header().Get("Link")
		if !strings.Contains(link, "/v1/") || !strings.Contains(link, "successor-version") {
			t.Fatalf("%s: bad successor link %q", path, link)
		}
		if v1.Header().Get("Deprecation") != "" {
			t.Fatalf("/v1%s must not be marked deprecated", path)
		}
	}
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK || rec.Header().Get("Deprecation") != "true" {
		t.Fatalf("/metrics alias: status %d, deprecation %q", rec.Code, rec.Header().Get("Deprecation"))
	}
}

// Requests that match no route at all get the structured envelope too, not
// the mux's plain-text page.
func TestUnknownRouteEnvelope(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	rec := get(t, h, "/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}
	if code, _ := decodeErrEnvelope(t, rec); code != "not_found" {
		t.Fatalf("code %q", code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
}

func TestEccentricityAlwaysArray(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	// Single id: still an array of one (documented contract; the seed
	// returned a bare object here, forcing clients to shape-sniff).
	rec := get(t, h, "/v1/eccentricity?node=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	arr := decodeArr(t, rec)
	if len(arr) != 1 || arr[0]["node"].(float64) != 0 || arr[0]["eccentricity"].(float64) <= 0 {
		t.Fatalf("single-node body %s", rec.Body.String())
	}
	// Batch keeps request order.
	rec = get(t, h, "/v1/eccentricity?node=7,0,10")
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec.Code)
	}
	arr = decodeArr(t, rec)
	if len(arr) != 3 || arr[0]["node"].(float64) != 7 || arr[1]["node"].(float64) != 0 || arr[2]["node"].(float64) != 10 {
		t.Fatalf("batch body %s", rec.Body.String())
	}
}

func TestEccentricityErrors(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	for url, want := range map[string]int{
		"/v1/eccentricity":             http.StatusBadRequest,
		"/v1/eccentricity?node=abc":    http.StatusBadRequest,
		"/v1/eccentricity?node=0,,1":   http.StatusBadRequest,
		"/v1/eccentricity?node=99999":  http.StatusNotFound, // well-formed but unknown
		"/v1/eccentricity?node=-3":     http.StatusNotFound,
		"/v1/eccentricity?node=0,7777": http.StatusNotFound, // bad id anywhere in the batch
	} {
		rec := get(t, h, url)
		if rec.Code != want {
			t.Errorf("%s: status %d, want %d", url, rec.Code, want)
		}
		code, _ := decodeErrEnvelope(t, rec)
		switch want {
		case http.StatusBadRequest:
			if code != "bad_node_id" && code != "missing_parameter" {
				t.Errorf("%s: code %q", url, code)
			}
		case http.StatusNotFound:
			if code != "node_not_found" {
				t.Errorf("%s: code %q", url, code)
			}
		}
	}
}

func TestEccentricityBatchCap(t *testing.T) {
	srv := testServer(t) // MaxBatch = 8
	h := testHandler(t, srv)
	ids := make([]string, 9)
	for i := range ids {
		ids[i] = "1"
	}
	rec := get(t, h, "/v1/eccentricity?node="+strings.Join(ids, ","))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch: status %d, want 413", rec.Code)
	}
	// At the cap it still works.
	rec = get(t, h, "/v1/eccentricity?node="+strings.Join(ids[:8], ","))
	if rec.Code != http.StatusOK {
		t.Fatalf("at-cap batch: status %d", rec.Code)
	}
}

func TestResistanceEndpoint(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	rec := get(t, h, "/v1/resistance?u=0&v=10")
	if body := decodeObj(t, rec); rec.Code != http.StatusOK || body["resistance"].(float64) <= 0 {
		t.Fatalf("status %d body %v", rec.Code, body)
	}
	for url, want := range map[string]int{
		"/v1/resistance?u=0":          http.StatusBadRequest,
		"/v1/resistance?u=0&v=x":      http.StatusBadRequest,
		"/v1/resistance?u=0&v=100000": http.StatusNotFound,
		"/v1/resistance?u=-1&v=5":     http.StatusNotFound,
		"/v1/resistance?u=zzz&v=0":    http.StatusBadRequest,
	} {
		if rec := get(t, h, url); rec.Code != want {
			t.Errorf("%s: status %d, want %d", url, rec.Code, want)
		}
	}
}

func TestSummaryEndpointCached(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	rec := get(t, h, "/v1/summary")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := decodeObj(t, rec)
	radius := body["radius"].(float64)
	diameter := body["diameter"].(float64)
	if radius <= 0 || diameter < radius {
		t.Fatalf("summary %v", body)
	}
	// Hull-pair diameter approximates the distribution diameter.
	hullDiam := body["hullDiameter"].(float64)
	if hullDiam < 0.5*diameter || hullDiam > 1.5*diameter {
		t.Fatalf("hull diameter %g vs %g", hullDiam, diameter)
	}
	if len(body["diameterPair"].([]any)) != 2 || len(body["center"].([]any)) == 0 {
		t.Fatalf("pair/center missing: %v", body)
	}
	first := rec.Body.String()
	// The whole payload — including the O(l²) hull diameter the seed
	// recomputed per request — is cached: byte-identical on a second hit.
	if again := get(t, h, "/v1/summary"); again.Body.String() != first {
		t.Fatalf("summary not cached:\n%s\nvs\n%s", first, again.Body.String())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	for _, url := range []string{"/v1/eccentricity?node=0", "/v1/summary", "/v1/healthz", "/v1/metrics", "/v1/summary"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", url, rec.Code)
		}
		if code, _ := decodeErrEnvelope(t, rec); code != "method_not_allowed" {
			t.Errorf("POST %s: code %q", url, code)
		}
	}
	// Mutations are POST/DELETE-only.
	rec := get(t, h, "/v1/edges")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/edges: status %d, want 405", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	h := testHandler(t, srv)
	get(t, h, "/v1/eccentricity?node=0")
	get(t, h, "/v1/eccentricity?node=1,2")
	get(t, h, "/v1/eccentricity?node=nope")
	get(t, h, "/v1/summary")

	rec := get(t, h, "/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`reccd_requests_total{endpoint="eccentricity",class="2xx"} 2`,
		`reccd_requests_total{endpoint="eccentricity",class="4xx"} 1`,
		`reccd_requests_total{endpoint="summary",class="2xx"} 1`,
		`reccd_request_seconds_count{endpoint="eccentricity"} 3`,
		`reccd_request_seconds_bucket{endpoint="summary",le="+Inf"} 1`,
		"reccd_index_sketch_dim 64",
		"reccd_index_hull_size",
		"reccd_index_solver_total_iters",
		"reccd_rejected_total 0",
		// Lifecycle gauges, sampled live at exposition time.
		"reccd_index_generation 1",
		"reccd_index_nodes 120",
		"reccd_mutation_queue_depth 0",
		"reccd_index_drift 0",
		"reccd_index_rebuilds 0",
		"reccd_index_rebuild_failures 0",
		"reccd_index_rebuild_in_progress 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestPprofGated(t *testing.T) {
	srv := testServer(t) // Pprof false
	h := testHandler(t, srv)
	if rec := get(t, h, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof should be off by default: %d", rec.Code)
	}
	srv.cfg.Pprof = true
	h = testHandler(t, srv)
	if rec := get(t, h, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("pprof flag should mount the index: %d", rec.Code)
	}
}

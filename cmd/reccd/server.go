package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"resistecc"
	"resistecc/internal/obs"
)

// idMap translates between external node ids (the labels clients use: the
// original ids from the edge-list file) and the internal compact ids of the
// largest-connected-component subgraph the index is built on.
//
// Two relabelling steps happen on load — edge-list label interning
// (arbitrary int64 labels → 0..n−1 in order of appearance) and LCC
// extraction (component nodes → 0..k−1) — and the seed server dropped both,
// silently answering for whatever internal node happened to carry the
// queried number. idMap composes the two so clients only ever see the ids
// they put in the file.
type idMap struct {
	toExternal []int64       // internal (LCC) id → external id
	toInternal map[int64]int // external id → internal (LCC) id
}

// newIDMap composes the edge-list label mapping (labels[compact] = external;
// nil means external == compact) with the LCC relabelling
// (lccToOrig[internal] = compact; nil means the identity over n nodes).
func newIDMap(n int, labels []int64, lccToOrig []int) *idMap {
	m := &idMap{
		toExternal: make([]int64, n),
		toInternal: make(map[int64]int, n),
	}
	for v := 0; v < n; v++ {
		orig := v
		if lccToOrig != nil {
			orig = lccToOrig[v]
		}
		ext := int64(orig)
		if labels != nil {
			ext = labels[orig]
		}
		m.toExternal[v] = ext
		m.toInternal[ext] = v
	}
	return m
}

// external translates an internal id; it tolerates out-of-range ids (which
// cannot come from a mapped query) by echoing them, so diagnostics never
// panic.
func (m *idMap) external(v int) int64 {
	if v < 0 || v >= len(m.toExternal) {
		return int64(v)
	}
	return m.toExternal[v]
}

func (m *idMap) externals(vs []int) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = m.external(v)
	}
	return out
}

// serverConfig holds the request-handling knobs of the service.
type serverConfig struct {
	// MaxBatch caps the number of ids one /eccentricity request may carry
	// (0 = unlimited); oversize batches are rejected with 413 so a single
	// request cannot do unbounded work.
	MaxBatch int
	// MaxInFlight caps concurrently executing requests (0 = unlimited);
	// excess load is shed with 503.
	MaxInFlight int
	// ReadTimeout/WriteTimeout/IdleTimeout configure the http.Server.
	ReadTimeout, WriteTimeout, IdleTimeout time.Duration
	// ShutdownGrace bounds how long graceful shutdown waits for in-flight
	// requests to drain.
	ShutdownGrace time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
}

func defaultConfig() serverConfig {
	return serverConfig{
		MaxBatch:      256,
		MaxInFlight:   128,
		ReadTimeout:   5 * time.Second,
		WriteTimeout:  30 * time.Second,
		IdleTimeout:   2 * time.Minute,
		ShutdownGrace: 10 * time.Second,
	}
}

// server answers resistance-eccentricity queries over an immutable
// FASTQUERY index. All query state is read-only after construction, so
// handlers are safe for concurrent use; the lazily computed summary is
// guarded by a Once.
type server struct {
	g   *resistecc.Graph // the LCC the index is built on
	idx *resistecc.FastIndex
	ids *idMap
	cfg serverConfig
	reg *obs.Registry

	// totalNodes/totalEdges describe the input graph before LCC extraction,
	// reported by /healthz so operators can see how much was dropped.
	totalNodes, totalEdges int
	buildTime              time.Duration

	summaryOnce sync.Once
	summary     summaryResponse
}

// summaryResponse is the cached /summary payload. Everything — including
// the hull-pair diameter the seed recomputed in O(l²) per request — is
// computed once, with node ids already translated to external form.
type summaryResponse struct {
	Radius       float64 `json:"radius"`
	Diameter     float64 `json:"diameter"`
	DiameterPair []int64 `json:"diameterPair"`
	HullDiameter float64 `json:"hullDiameter"`
	Mean         float64 `json:"mean"`
	Skewness     float64 `json:"skewness"`
	Center       []int64 `json:"center"`
}

// newServer builds the index over g (already reduced to its LCC) and wires
// the id translation. inputNodes/inputEdges describe the pre-LCC input
// graph, for /healthz.
func newServer(g *resistecc.Graph, ids *idMap, inputNodes, inputEdges int,
	opt resistecc.SketchOptions, cfg serverConfig) (*server, error) {
	start := time.Now()
	idx, err := g.NewFastIndex(opt)
	if err != nil {
		return nil, err
	}
	s := &server{
		g: g, idx: idx, ids: ids, cfg: cfg,
		reg:        obs.NewRegistry("reccd"),
		totalNodes: inputNodes, totalEdges: inputEdges,
		buildTime: time.Since(start),
	}
	s.publishBuildGauges()
	return s, nil
}

// publishBuildGauges exports index construction statistics as static
// gauges on /metrics.
func (s *server) publishBuildGauges() {
	st := s.idx.BuildStats()
	s.reg.SetGauge("index_nodes", float64(s.g.N()))
	s.reg.SetGauge("index_edges", float64(s.g.M()))
	s.reg.SetGauge("index_sketch_dim", float64(st.SketchDim))
	s.reg.SetGauge("index_hull_size", float64(st.HullSize))
	s.reg.SetGauge("index_solver_total_iters", float64(st.SolverTotalIters))
	s.reg.SetGauge("index_solver_max_iters", float64(st.SolverMaxIters))
	s.reg.SetGauge("index_solver_max_residual", st.SolverMaxResidual)
	s.reg.SetGauge("index_build_seconds", s.buildTime.Seconds())
}

// handler assembles the full middleware stack: routing with per-endpoint
// instrumentation inside, then the concurrency limiter, then access
// logging outermost so even shed requests get a log line and request id.
func (s *server) handler(logger *log.Logger) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.reg.InstrumentFunc("healthz", s.handleHealth))
	mux.Handle("GET /eccentricity", s.reg.InstrumentFunc("eccentricity", s.handleEccentricity))
	mux.Handle("GET /resistance", s.reg.InstrumentFunc("resistance", s.handleResistance))
	mux.Handle("GET /summary", s.reg.InstrumentFunc("summary", s.handleSummary))
	mux.Handle("GET /metrics", s.reg.Instrument("metrics", s.reg))
	if s.cfg.Pprof {
		mountPprof(mux)
	}
	var h http.Handler = mux
	h = s.reg.LimitInFlight(s.cfg.MaxInFlight, h)
	return obs.AccessLog(logger, h)
}

// httpServer wraps h in an http.Server with the configured timeouts; the
// seed's bare ListenAndServe had none, leaving the service open to
// slow-loris connections holding goroutines forever.
func httpServer(addr string, h http.Handler, cfg serverConfig) *http.Server {
	return &http.Server{
		Addr:         addr,
		Handler:      h,
		ReadTimeout:  cfg.ReadTimeout,
		WriteTimeout: cfg.WriteTimeout,
		IdleTimeout:  cfg.IdleTimeout,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than log.
		log.Printf("reccd: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// resolveNode parses one external node id and maps it to the internal LCC
// id. Malformed ids are a 400; well-formed ids that don't name an LCC node
// (dropped by preprocessing, or never in the input) are a 404 — the seed
// instead answered for whichever internal node carried the number.
func (s *server) resolveNode(w http.ResponseWriter, raw string) (int, bool) {
	ext, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad node id %q", raw)
		return 0, false
	}
	v, ok := s.ids.toInternal[ext]
	if !ok {
		writeError(w, http.StatusNotFound, "node %d not in the largest connected component", ext)
		return 0, false
	}
	return v, true
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.idx.BuildStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"nodes":         s.g.N(),
		"edges":         s.g.M(),
		"inputNodes":    s.totalNodes,
		"inputEdges":    s.totalEdges,
		"sketchDim":     st.SketchDim,
		"hullBoundary":  st.HullSize,
		"hullCertified": st.HullCertified,
		"hullRounds":    st.HullRounds,
		"solverIters":   st.SolverTotalIters,
		"solverMaxIter": st.SolverMaxIters,
		"solverMaxRes":  st.SolverMaxResidual,
		"indexBuildSec": s.buildTime.Seconds(),
		"maxBatch":      s.cfg.MaxBatch,
	})
}

type eccResponse struct {
	Node         int64   `json:"node"`
	Eccentricity float64 `json:"eccentricity"`
	Farthest     int64   `json:"farthest"`
}

// handleEccentricity answers GET /eccentricity?node=a,b,c. The response is
// always a JSON array, one element per requested id in request order —
// including for a single id (the seed returned a bare object for one node
// and an array for many, forcing clients to shape-sniff).
func (s *server) handleEccentricity(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("node")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing ?node= (comma-separated ids)")
		return
	}
	parts := strings.Split(raw, ",")
	if s.cfg.MaxBatch > 0 && len(parts) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d ids exceeds the %d-id limit", len(parts), s.cfg.MaxBatch)
		return
	}
	nodes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, ok := s.resolveNode(w, p)
		if !ok {
			return
		}
		nodes = append(nodes, v)
	}
	vals := s.idx.Query(nodes)
	out := make([]eccResponse, len(vals))
	for i, v := range vals {
		out[i] = eccResponse{
			Node:         s.ids.external(v.Node),
			Eccentricity: v.Value,
			Farthest:     s.ids.external(v.Farthest),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleResistance(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("u") == "" || q.Get("v") == "" {
		writeError(w, http.StatusBadRequest, "need integer ?u= and ?v=")
		return
	}
	u, ok := s.resolveNode(w, q.Get("u"))
	if !ok {
		return
	}
	v, ok := s.resolveNode(w, q.Get("v"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"u": s.ids.external(u), "v": s.ids.external(v),
		"resistance": s.idx.Resistance(u, v),
	})
}

// handleSummary serves the cached distribution summary. The full
// distribution scan and the O(l²) hull-pair diameter both run exactly once,
// on the first request; afterwards /summary is O(1).
func (s *server) handleSummary(w http.ResponseWriter, _ *http.Request) {
	s.summaryOnce.Do(func() {
		sum := resistecc.Summarize(s.idx.Distribution())
		diam, pair := s.idx.ResistanceDiameter()
		s.summary = summaryResponse{
			Radius:       sum.Radius,
			Diameter:     sum.Diameter,
			DiameterPair: s.ids.externals(pair[:]),
			HullDiameter: diam,
			Mean:         sum.Mean,
			Skewness:     sum.Skewness,
			Center:       s.ids.externals(sum.Center),
		}
	})
	writeJSON(w, http.StatusOK, s.summary)
}

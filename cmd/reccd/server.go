package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resistecc"
	"resistecc/internal/obs"
	"resistecc/internal/repl"
	"resistecc/internal/trace"
)

// idMap translates between external node ids (the labels clients use: the
// original ids from the edge-list file) and the internal compact ids of the
// largest-connected-component subgraph the index is built on.
//
// Two relabelling steps happen on load — edge-list label interning
// (arbitrary int64 labels → 0..n−1 in order of appearance) and LCC
// extraction (component nodes → 0..k−1) — and the seed server dropped both,
// silently answering for whatever internal node happened to carry the
// queried number. idMap composes the two so clients only ever see the ids
// they put in the file.
type idMap struct {
	toExternal []int64       // internal (LCC) id → external id
	toInternal map[int64]int // external id → internal (LCC) id
}

// newIDMap composes the edge-list label mapping (labels[compact] = external;
// nil means external == compact) with the LCC relabelling
// (lccToOrig[internal] = compact; nil means the identity over n nodes).
func newIDMap(n int, labels []int64, lccToOrig []int) *idMap {
	m := &idMap{
		toExternal: make([]int64, n),
		toInternal: make(map[int64]int, n),
	}
	for v := 0; v < n; v++ {
		orig := v
		if lccToOrig != nil {
			orig = lccToOrig[v]
		}
		ext := int64(orig)
		if labels != nil {
			ext = labels[orig]
		}
		m.toExternal[v] = ext
		m.toInternal[ext] = v
	}
	return m
}

// external translates an internal id; it tolerates out-of-range ids (which
// cannot come from a mapped query) by echoing them, so diagnostics never
// panic.
func (m *idMap) external(v int) int64 {
	if v < 0 || v >= len(m.toExternal) {
		return int64(v)
	}
	return m.toExternal[v]
}

func (m *idMap) externals(vs []int) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = m.external(v)
	}
	return out
}

// serverConfig holds the request-handling knobs of the service.
type serverConfig struct {
	// MaxBatch caps the number of ids one /eccentricity request may carry
	// (0 = unlimited); oversize batches are rejected with 413 so a single
	// request cannot do unbounded work.
	MaxBatch int
	// MaxInFlight caps concurrently executing requests (0 = unlimited);
	// excess load is shed with 503.
	MaxInFlight int
	// ReadTimeout/WriteTimeout/IdleTimeout configure the http.Server.
	ReadTimeout, WriteTimeout, IdleTimeout time.Duration
	// ShutdownGrace bounds how long graceful shutdown waits for in-flight
	// requests to drain.
	ShutdownGrace time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// DriftThreshold is the lifecycle ε_drift: accumulated incremental-update
	// error that triggers a background rebuild (0 = library default 0.5).
	DriftThreshold float64
	// MaxDeletions forces a rebuild after this many removals (0 = default 16).
	MaxDeletions int
	// MutationQueue is the mutation queue capacity (0 = default 64).
	MutationQueue int
	// DataDir enables durability: index state lives there as a checksummed
	// snapshot plus a mutation WAL, and startup warm-restores from it
	// (resistecc.OpenDynamicIndex). Empty = in-memory only.
	DataDir string
	// CheckpointInterval adds time-based checkpoints on top of the automatic
	// after-every-rebuild ones, bounding WAL growth (and replay time) during
	// long stretches of incremental-only mutations. 0 disables the ticker.
	CheckpointInterval time.Duration
	// LegacyRoutes re-mounts the retired unversioned GET aliases (/healthz,
	// /eccentricity, …) next to their /v1 successors, stamped with a
	// Deprecation header. Off by default; for clients mid-migration only.
	LegacyRoutes bool
	// TraceOut records every accepted API operation — queries, mutations,
	// rebuilds, checkpoints — into a RECCTRC1 trace file for bit-exact
	// replay and load generation (recc replay / recc loadgen). Empty
	// disables recording.
	TraceOut string
	// TraceSync fsyncs the trace after every Nth record, the same policy
	// knob the persist WAL uses; 0 buffers until shutdown.
	TraceSync int
}

func defaultConfig() serverConfig {
	return serverConfig{
		MaxBatch:      256,
		MaxInFlight:   128,
		ReadTimeout:   5 * time.Second,
		WriteTimeout:  30 * time.Second,
		IdleTimeout:   2 * time.Minute,
		ShutdownGrace: 10 * time.Second,
	}
}

// server answers resistance-eccentricity queries over a DynamicIndex: a
// generation-numbered FASTQUERY index that absorbs edge mutations without
// downtime. Every handler pins one immutable snapshot for the whole request
// (so batches are internally consistent) and stamps its generation on the
// response as X-Index-Generation. The distribution summary is cached per
// generation.
type server struct {
	// cur is the served engine: the index plus its id translation, swapped
	// atomically as one unit. On a writer it is set once at construction; a
	// replica replaces it on every snapshot re-base (the shipped graph — and
	// with it the id mapping — may have changed). nil only on a replica that
	// has not completed its first sync.
	cur  atomic.Pointer[serving]
	role string
	cfg  serverConfig
	reg  *obs.Registry

	// totalNodes/totalEdges describe the input graph before LCC extraction,
	// reported by /healthz so operators can see how much was dropped.
	totalNodes, totalEdges int
	buildTime              time.Duration

	// recovery reports how a durable index started (warm vs cold and why);
	// zero when DataDir is unset. stopCheckpoint ends the interval ticker.
	recovery       resistecc.RecoveryInfo
	durable        bool
	stopCheckpoint chan struct{}
	checkpointWG   sync.WaitGroup

	// source serves the replication feed (writer with a data directory);
	// tailer pulls it (replica). Each nil on the roles that lack it.
	source *repl.Source
	tailer *repl.Tailer

	// rec captures accepted API operations into a trace file (-trace-out);
	// nil when recording is off — every hook is nil-safe.
	rec *trace.Recorder

	sumMu  sync.Mutex
	sumFor *serving        // guarded by sumMu; engine the cache was computed on
	sumGen uint64          // guarded by sumMu
	sum    summaryResponse // guarded by sumMu
}

// serving bundles one index with the id mapping describing it.
type serving struct {
	dyn *resistecc.DynamicIndex
	ids *idMap
}

// current returns the served engine (nil on a replica before its first
// sync). Handlers load it once and use that one view for the whole request.
func (s *server) current() *serving { return s.cur.Load() }

// stats reports lifecycle state, zero before the first sync so metric
// closures registered early never panic.
func (s *server) stats() resistecc.DynamicStats {
	if sv := s.current(); sv != nil {
		return sv.dyn.Stats()
	}
	return resistecc.DynamicStats{}
}

// summaryResponse is the cached /summary payload. Everything — including
// the hull-pair diameter the seed recomputed in O(l²) per request — is
// computed once per index generation, with node ids already translated to
// external form.
type summaryResponse struct {
	Radius       float64 `json:"radius"`
	Diameter     float64 `json:"diameter"`
	DiameterPair []int64 `json:"diameterPair"`
	HullDiameter float64 `json:"hullDiameter"`
	Mean         float64 `json:"mean"`
	Skewness     float64 `json:"skewness"`
	Center       []int64 `json:"center"`
}

// newServer builds the dynamic index over g (already reduced to its LCC)
// and wires the id translation. inputNodes/inputEdges describe the pre-LCC
// input graph, for /healthz. ctx bounds the initial build: cancelling it
// (e.g. a shutdown signal during a long cold start) abandons the build.
func newServer(ctx context.Context, g *resistecc.Graph, ids *idMap, inputNodes, inputEdges int,
	opts []resistecc.Option, cfg serverConfig) (*server, error) {
	start := time.Now()
	opts = append(opts,
		resistecc.WithDriftThreshold(cfg.DriftThreshold),
		resistecc.WithMaxDeletions(cfg.MaxDeletions),
		resistecc.WithMutationQueue(cfg.MutationQueue),
	)
	var dyn *resistecc.DynamicIndex
	var rec resistecc.RecoveryInfo
	var err error
	if cfg.DataDir != "" {
		dyn, rec, err = resistecc.OpenDynamicIndex(ctx, cfg.DataDir, g, opts...)
	} else {
		dyn, err = resistecc.NewDynamicIndex(ctx, g, opts...)
	}
	if err != nil {
		return nil, err
	}
	s := &server{
		role: roleWriter, cfg: cfg,
		reg:        obs.NewRegistry("reccd"),
		totalNodes: inputNodes, totalEdges: inputEdges,
		buildTime: time.Since(start),
		recovery:  rec,
		durable:   cfg.DataDir != "",
	}
	s.cur.Store(&serving{dyn: dyn, ids: ids})
	if err := s.openRecorder(); err != nil {
		dyn.Close()
		return nil, err
	}
	s.publishBuildGauges()
	s.publishLifecycleGauges()
	if s.durable {
		s.publishPersistMetrics()
		s.startCheckpointTicker()
		s.source = &repl.Source{
			Store:      dyn.ReplicationStore(),
			Generation: func() uint64 { return dyn.Snapshot().Generation },
		}
		s.publishSourceMetrics()
	}
	return s, nil
}

// close stops the checkpoint ticker and releases the lifecycle workers (used
// by tests and graceful shutdown; the process otherwise ends with the server).
func (s *server) close() {
	if s.stopCheckpoint != nil {
		close(s.stopCheckpoint)
		s.checkpointWG.Wait()
		s.stopCheckpoint = nil
	}
	if s.tailer != nil {
		s.tailer.Stop()
	}
	if sv := s.current(); sv != nil {
		sv.dyn.Close()
	}
	if err := s.rec.Close(); err != nil {
		log.Printf("reccd: closing trace recorder: %v", err)
	}
}

// openRecorder starts trace recording when TraceOut is set and exports the
// recorder counters. Shared by the writer and replica constructors.
func (s *server) openRecorder() error {
	if s.cfg.TraceOut == "" {
		return nil
	}
	rec, err := trace.NewRecorder(s.cfg.TraceOut, trace.RecorderOptions{SyncEvery: s.cfg.TraceSync})
	if err != nil {
		return fmt.Errorf("opening trace recorder: %w", err)
	}
	s.rec = rec
	publishTraceMetrics(s.reg, rec)
	return nil
}

// publishTraceMetrics exports recorder activity; shared with the router,
// which records through its proxy tee rather than a *server.
func publishTraceMetrics(reg *obs.Registry, rec *trace.Recorder) {
	reg.SetCounterFunc("trace_records_total", func() float64 { return float64(rec.Stats().Records) })
	reg.SetCounterFunc("trace_bytes_total", func() float64 { return float64(rec.Stats().Bytes) })
	reg.SetCounterFunc("trace_write_failures_total", func() float64 { return float64(rec.Stats().WriteFailures) })
}

// startCheckpointTicker checkpoints every CheckpointInterval so the WAL (and
// restart replay time) stays bounded even when no rebuild ever triggers. A
// stale or already-current index makes the call a cheap no-op.
func (s *server) startCheckpointTicker() {
	if s.cfg.CheckpointInterval <= 0 {
		return
	}
	s.stopCheckpoint = make(chan struct{})
	s.checkpointWG.Add(1)
	go func() {
		defer s.checkpointWG.Done()
		t := time.NewTicker(s.cfg.CheckpointInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := s.current().dyn.Checkpoint(); err != nil && !errors.Is(err, resistecc.ErrIndexStale) {
					log.Printf("reccd: interval checkpoint: %v", err)
				}
			case <-s.stopCheckpoint:
				return
			}
		}
	}()
}

// idx returns the FastIndex of the current generation (nil on a replica
// before its first sync).
func (s *server) idx() *resistecc.FastIndex {
	sv := s.current()
	if sv == nil {
		return nil
	}
	return sv.dyn.Snapshot().Index
}

// publishBuildGauges exports generation-1 construction statistics as static
// gauges on /metrics.
func (s *server) publishBuildGauges() {
	ix := s.idx()
	if ix == nil {
		return
	}
	st := ix.BuildStats()
	s.reg.SetGauge("index_sketch_dim", float64(st.SketchDim))
	s.reg.SetGauge("index_solver_total_iters", float64(st.SolverTotalIters))
	s.reg.SetGauge("index_solver_max_iters", float64(st.SolverMaxIters))
	s.reg.SetGauge("index_solver_max_residual", st.SolverMaxResidual)
	s.reg.SetGauge("index_build_seconds", s.buildTime.Seconds())
}

// publishLifecycleGauges exports the moving lifecycle state as live gauges,
// sampled at every /metrics scrape.
func (s *server) publishLifecycleGauges() {
	stat := func(f func(resistecc.DynamicStats) float64) func() float64 {
		return func() float64 { return f(s.stats()) }
	}
	s.reg.SetGaugeFunc("index_generation", stat(func(st resistecc.DynamicStats) float64 { return float64(st.Generation) }))
	s.reg.SetGaugeFunc("index_nodes", stat(func(st resistecc.DynamicStats) float64 { return float64(st.IndexN) }))
	s.reg.SetGaugeFunc("index_edges", stat(func(st resistecc.DynamicStats) float64 { return float64(st.IndexM) }))
	s.reg.SetGaugeFunc("index_hull_size", func() float64 {
		if ix := s.idx(); ix != nil {
			return float64(ix.BoundarySize())
		}
		return 0
	})
	s.reg.SetGaugeFunc("mutation_queue_depth", stat(func(st resistecc.DynamicStats) float64 { return float64(st.QueueDepth) }))
	s.reg.SetGaugeFunc("index_drift", stat(func(st resistecc.DynamicStats) float64 { return st.Drift }))
	s.reg.SetGaugeFunc("index_updates", stat(func(st resistecc.DynamicStats) float64 { return float64(st.Updates) }))
	s.reg.SetGaugeFunc("index_deletions", stat(func(st resistecc.DynamicStats) float64 { return float64(st.Deletions) }))
	s.reg.SetGaugeFunc("index_rebuilds", stat(func(st resistecc.DynamicStats) float64 { return float64(st.Rebuilds) }))
	s.reg.SetGaugeFunc("index_rebuild_failures", stat(func(st resistecc.DynamicStats) float64 { return float64(st.RebuildFailures) }))
	s.reg.SetGaugeFunc("index_rebuild_in_progress", stat(func(st resistecc.DynamicStats) float64 {
		if st.RebuildInProgress {
			return 1
		}
		return 0
	}))
	s.reg.SetGaugeFunc("index_last_rebuild_seconds", stat(func(st resistecc.DynamicStats) float64 { return st.LastRebuildSeconds }))
}

// publishPersistMetrics exports the durability state: snapshot freshness and
// WAL depth as live gauges, checkpoint/journal activity as counters. Only
// registered when a data directory is configured.
func (s *server) publishPersistMetrics() {
	pstat := func(f func(resistecc.PersistStats) float64) func() float64 {
		return func() float64 { return f(s.current().dyn.PersistStats()) }
	}
	s.reg.SetGaugeFunc("persist_snapshot_age_seconds", pstat(func(ps resistecc.PersistStats) float64 { return ps.SnapshotAgeSeconds }))
	s.reg.SetGaugeFunc("persist_wal_records", pstat(func(ps resistecc.PersistStats) float64 { return float64(ps.WALRecords) }))
	s.reg.SetGaugeFunc("persist_last_checkpoint_seconds", pstat(func(ps resistecc.PersistStats) float64 { return ps.LastCheckpointSeconds }))
	s.reg.SetCounterFunc("persist_checkpoints_total", pstat(func(ps resistecc.PersistStats) float64 { return float64(ps.Checkpoints) }))
	s.reg.SetCounterFunc("persist_checkpoint_failures_total", pstat(func(ps resistecc.PersistStats) float64 { return float64(ps.CheckpointFailures) }))
	s.reg.SetCounterFunc("persist_journal_failures_total", pstat(func(ps resistecc.PersistStats) float64 { return float64(ps.JournalFailures) }))
}

// publishSourceMetrics exports the writer-side replication feed counters.
func (s *server) publishSourceMetrics() {
	s.reg.SetCounterFunc("repl_snapshots_served_total", func() float64 { return float64(s.source.Stats().SnapshotsServed) })
	s.reg.SetCounterFunc("repl_wal_frames_served_total", func() float64 { return float64(s.source.Stats().FramesServed) })
	s.reg.SetCounterFunc("repl_wal_records_served_total", func() float64 { return float64(s.source.Stats().RecordsServed) })
	s.reg.SetCounterFunc("repl_bytes_served_total", func() float64 { return float64(s.source.Stats().BytesServed) })
}

// publishReplicaMetrics exports the replica-side replication state: lag and
// divergence gauges plus transfer counters, sampled from the tailer.
func (s *server) publishReplicaMetrics() {
	tstat := func(f func(repl.TailerStats) float64) func() float64 {
		return func() float64 { return f(s.tailer.Stats()) }
	}
	s.reg.SetGaugeFunc("repl_applied_seq", tstat(func(ts repl.TailerStats) float64 { return float64(ts.AppliedSeq) }))
	s.reg.SetGaugeFunc("repl_upstream_seq", tstat(func(ts repl.TailerStats) float64 { return float64(ts.UpstreamSeq) }))
	// repl_lag_seq is the canonical name for the sequence-number lag
	// (upstream seq − applied seq). The retired repl_lag alias is emitted
	// only under -legacy-routes, the same switch that resurrects the pre-v1
	// URL aliases; dashboards get one flag and one deprecation window.
	s.reg.SetGaugeFunc("repl_lag_seq", tstat(func(ts repl.TailerStats) float64 { return float64(ts.Lag) }))
	if s.cfg.LegacyRoutes {
		s.reg.SetGaugeFunc("repl_lag", tstat(func(ts repl.TailerStats) float64 { return float64(ts.Lag) }))
	}
	s.reg.SetGaugeFunc("repl_last_contact_age_seconds", func() float64 {
		ts := s.tailer.Stats()
		if ts.LastContact.IsZero() {
			return -1
		}
		return time.Since(ts.LastContact).Seconds()
	})
	s.reg.SetCounterFunc("repl_resyncs_total", tstat(func(ts repl.TailerStats) float64 { return float64(ts.Resyncs) }))
	s.reg.SetCounterFunc("repl_fetches_total", tstat(func(ts repl.TailerStats) float64 { return float64(ts.Fetches) }))
	s.reg.SetCounterFunc("repl_fetch_bytes_total", tstat(func(ts repl.TailerStats) float64 { return float64(ts.FetchBytes) }))
	s.reg.SetCounterFunc("repl_fetch_failures_total", tstat(func(ts repl.TailerStats) float64 { return float64(ts.FetchFailures) }))
}

// handler assembles the full middleware stack: routing with per-endpoint
// instrumentation inside, then the error-envelope interceptor (so the mux's
// own plain-text 404/405 pages come out as the structured envelope), then
// the concurrency limiter, then access logging outermost so even shed
// requests get a log line and request id.
//
// The API lives under /v1/. The pre-v1 unversioned GET aliases are retired:
// they 404 unless -legacy-routes re-mounts them, and then every response
// carries a Deprecation header pointing at the /v1 successor.
func (s *server) handler(logger *log.Logger) http.Handler {
	mux := http.NewServeMux()
	// Registrations use full "METHOD /v1/path" literals: the apisurface
	// analyzer collects every such constant in this function and checks the
	// set against routes.json. The legacy alias pattern is derived (non-
	// constant) so retired unversioned paths stay out of the manifest.
	get := func(pattern, name string, h http.HandlerFunc) {
		wrapped := s.reg.InstrumentFunc(name, h)
		mux.Handle(pattern, wrapped)
		if s.cfg.LegacyRoutes {
			aliasPattern, path := legacyAlias(pattern)
			mux.Handle(aliasPattern, deprecated(path, wrapped))
		}
	}
	get("GET /v1/healthz", "healthz", s.handleHealth)
	get("GET /v1/eccentricity", "eccentricity", s.handleEccentricity)
	get("GET /v1/resistance", "resistance", s.handleResistance)
	get("GET /v1/summary", "summary", s.handleSummary)
	metrics := s.reg.Instrument("metrics", s.reg)
	mux.Handle("GET /v1/metrics", metrics)
	if s.cfg.LegacyRoutes {
		aliasPattern, path := legacyAlias("GET /v1/metrics")
		mux.Handle(aliasPattern, deprecated(path, metrics))
	}

	// Mutations exist only under /v1/. Replicas refuse them with a typed
	// 403: accepting a write outside the writer's WAL would silently fork
	// the replica's history from the writer's.
	mux.Handle("POST /v1/edges", s.reg.InstrumentFunc("edges_add", s.writerOnly(s.handleAddEdge)))
	mux.Handle("DELETE /v1/edges", s.reg.InstrumentFunc("edges_remove", s.writerOnly(s.handleRemoveEdge)))
	mux.Handle("POST /v1/rebuild", s.reg.InstrumentFunc("rebuild", s.writerOnly(s.handleRebuild)))
	mux.Handle("POST /v1/checkpoint", s.reg.InstrumentFunc("checkpoint", s.writerOnly(s.handleCheckpoint)))

	// The replication feed: a durable writer ships snapshots, WAL tails and
	// the id mapping to its replicas.
	if s.source != nil {
		mux.Handle("GET /v1/repl/snapshot", s.reg.InstrumentFunc("repl_snapshot", s.source.ServeSnapshot))
		mux.Handle("GET /v1/repl/wal", s.reg.InstrumentFunc("repl_wal", s.source.ServeWAL))
		mux.Handle("GET /v1/repl/ids", s.reg.InstrumentFunc("repl_ids", s.handleReplIDs))
	}
	mux.Handle("GET /v1/repl/status", s.reg.InstrumentFunc("repl_status", s.handleReplStatus))

	if s.cfg.Pprof {
		mountPprof(mux)
	}
	var h http.Handler = withEnvelope(mux)
	h = s.reg.LimitInFlightWith(s.cfg.MaxInFlight, h, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "overloaded", "server overloaded; retry")
	}))
	return obs.AccessLog(logger, h)
}

// httpServer wraps h in an http.Server with the configured timeouts; the
// seed's bare ListenAndServe had none, leaving the service open to
// slow-loris connections holding goroutines forever.
func httpServer(addr string, h http.Handler, cfg serverConfig) *http.Server {
	return &http.Server{
		Addr:         addr,
		Handler:      h,
		ReadTimeout:  cfg.ReadTimeout,
		WriteTimeout: cfg.WriteTimeout,
		IdleTimeout:  cfg.IdleTimeout,
	}
}

// The error envelope types live in internal/obs (ErrorEnvelope/ErrorBody),
// shared with the replication feed so the whole tier speaks one error shape.
// The route/method surface of this binary is pinned by cmd/reccd/routes.json,
// which the apisurface analyzer validates and cross-checks against the
// registration literals in (*server).handler and (*routerServer).handler.
//recclint:routes routes.json

// writeJSON emits status with a JSON body. It is the envelope layer of the
// server: the apisurface analyzer sanctions its WriteHeader and, at every
// call site passing a constant error status, requires the body's type to
// carry the {"error":{code,message}} envelope.
//
//recclint:envelope
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than log.
		log.Printf("reccd: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	obs.WriteError(w, status, code, format, args...)
}

// envelopeWriter rewrites the mux's own plain-text 404/405 pages into the
// structured error envelope. Handler-produced errors pass through untouched
// (they set Content-Type: application/json before writing the header).
type envelopeWriter struct {
	http.ResponseWriter
	wroteHeader bool
	intercepted bool
}

func (ew *envelopeWriter) WriteHeader(status int) {
	if !ew.wroteHeader {
		ew.wroteHeader = true
		ct := ew.Header().Get("Content-Type")
		if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
			!strings.HasPrefix(ct, "application/json") {
			ew.intercepted = true
			code, msg := "not_found", "no such endpoint"
			if status == http.StatusMethodNotAllowed {
				code, msg = "method_not_allowed", "method not allowed for this endpoint"
			}
			ew.Header().Set("Content-Type", "application/json")
			ew.ResponseWriter.WriteHeader(status)
			if err := json.NewEncoder(ew.ResponseWriter).Encode(obs.ErrorEnvelope{Error: obs.ErrorBody{Code: code, Message: msg}}); err != nil {
				log.Printf("reccd: encoding error envelope: %v", err)
			}
			return
		}
	}
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *envelopeWriter) Write(p []byte) (int, error) {
	if !ew.wroteHeader {
		ew.WriteHeader(http.StatusOK)
	}
	if ew.intercepted {
		return len(p), nil // swallow the plain-text body being replaced
	}
	return ew.ResponseWriter.Write(p)
}

func withEnvelope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

// setGeneration stamps the served index generation on the response, so
// clients can correlate answers with mutations they issued. The apisurface
// analyzer requires every manifest route marked "generation" to reach this
// function from its handler.
//
//recclint:genstamp
func setGeneration(w http.ResponseWriter, gen uint64) {
	w.Header().Set("X-Index-Generation", strconv.FormatUint(gen, 10))
}

// legacyAlias derives the retired unversioned mux pattern (and bare path)
// from a "METHOD /v1/path" literal: "GET /v1/healthz" → "GET /healthz",
// "/healthz". Deliberately not a constant expression at the call sites, so
// the apisurface route collection sees only the canonical /v1 surface.
func legacyAlias(pattern string) (aliasPattern, path string) {
	method, rest, _ := strings.Cut(pattern, " ")
	path = strings.TrimPrefix(rest, "/v1")
	return method + " " + path, path
}

// deprecated wraps a retired unversioned alias: the response carries a
// Deprecation header (RFC 9745) and a successor-version link so clients
// still on the old path learn where to go.
func deprecated(path string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", path))
		next.ServeHTTP(w, r)
	})
}

// writerOnly guards a mutating handler: replicas answer 403 with a typed
// error naming the upstream, instead of forking their history.
func (s *server) writerOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.role != roleWriter {
			writeError(w, http.StatusForbidden, "not_writer",
				"this %s serves reads only; send mutations to the writer", s.role)
			return
		}
		h(w, r)
	}
}

// engine loads the served engine, answering 503 when a replica has not
// finished its first sync yet (the index does not exist).
func (s *server) engine(w http.ResponseWriter) (*serving, bool) {
	sv := s.current()
	if sv == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "not_ready",
			"replica has not completed its initial sync")
		return nil, false
	}
	return sv, true
}

// handleReplIDs ships the writer's id mapping: element v is the external id
// of internal LCC node v. Replicas fetch it alongside every snapshot — WAL
// records speak internal ids, clients speak external ones.
func (s *server) handleReplIDs(w http.ResponseWriter, _ *http.Request) {
	sv, ok := s.engine(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"toExternal": sv.ids.toExternal})
}

// handleReplStatus reports the replication view of this process: the feed
// counters on a writer, tailing progress on a replica.
func (s *server) handleReplStatus(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{"role": s.role}
	if sv := s.current(); sv != nil {
		body["generation"] = sv.dyn.Snapshot().Generation
		body["seq"] = sv.dyn.Seq()
	}
	if s.source != nil {
		st := s.source.Stats()
		body["source"] = map[string]any{
			"snapshotsServed": st.SnapshotsServed,
			"framesServed":    st.FramesServed,
			"recordsServed":   st.RecordsServed,
			"bytesServed":     st.BytesServed,
		}
	}
	if s.tailer != nil {
		ts := s.tailer.Stats()
		body["tail"] = map[string]any{
			"appliedSeq":    ts.AppliedSeq,
			"upstreamSeq":   ts.UpstreamSeq,
			"upstreamGen":   ts.UpstreamGen,
			"lag":           ts.Lag,
			"resyncs":       ts.Resyncs,
			"fetches":       ts.Fetches,
			"fetchBytes":    ts.FetchBytes,
			"fetchFailures": ts.FetchFailures,
			"lastError":     ts.LastError,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// resolveNode parses one external node id and maps it to the internal LCC
// id. Malformed ids are a 400; well-formed ids that don't name an LCC node
// (dropped by preprocessing, or never in the input) are a 404 — the seed
// instead answered for whichever internal node carried the number.
func (sv *serving) resolveNode(w http.ResponseWriter, raw string) (int, bool) {
	ext, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_node_id", "bad node id %q", raw)
		return 0, false
	}
	v, ok := sv.ids.toInternal[ext]
	if !ok {
		writeError(w, http.StatusNotFound, "node_not_found",
			"node %d not in the largest connected component", ext)
		return 0, false
	}
	return v, true
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	sv, ok := s.engine(w)
	if !ok {
		return
	}
	snap := sv.dyn.Snapshot()
	st := snap.Index.BuildStats()
	dst := sv.dyn.Stats()
	setGeneration(w, snap.Generation)
	body := map[string]any{
		"status":            "ok",
		"role":              s.role,
		"seq":               sv.dyn.Seq(),
		"nodes":             snap.N,
		"edges":             snap.M,
		"inputNodes":        s.totalNodes,
		"inputEdges":        s.totalEdges,
		"sketchDim":         st.SketchDim,
		"hullBoundary":      st.HullSize,
		"hullCertified":     st.HullCertified,
		"hullRounds":        st.HullRounds,
		"solverIters":       st.SolverTotalIters,
		"solverMaxIter":     st.SolverMaxIters,
		"solverMaxRes":      st.SolverMaxResidual,
		"indexBuildSec":     s.buildTime.Seconds(),
		"maxBatch":          s.cfg.MaxBatch,
		"generation":        snap.Generation,
		"drift":             dst.Drift,
		"queueDepth":        dst.QueueDepth,
		"rebuilds":          dst.Rebuilds,
		"rebuildInProgress": dst.RebuildInProgress,
	}
	if s.durable {
		ps := sv.dyn.PersistStats()
		body["persist"] = map[string]any{
			"warmStart":          s.recovery.Warm,
			"coldStartReason":    s.recovery.Reason,
			"replayedMutations":  s.recovery.ReplayedMutations,
			"snapshotSeq":        ps.SnapshotSeq,
			"snapshotAgeSec":     ps.SnapshotAgeSeconds,
			"walRecords":         ps.WALRecords,
			"checkpoints":        ps.Checkpoints,
			"checkpointFailures": ps.CheckpointFailures,
			"journalFailures":    ps.JournalFailures,
		}
	}
	if s.tailer != nil {
		ts := s.tailer.Stats()
		body["replication"] = map[string]any{
			"upstreamSeq": ts.UpstreamSeq,
			"upstreamGen": ts.UpstreamGen,
			"lag":         ts.Lag,
			"resyncs":     ts.Resyncs,
			"lastError":   ts.LastError,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

type eccResponse struct {
	Node         int64   `json:"node"`
	Eccentricity float64 `json:"eccentricity"`
	Farthest     int64   `json:"farthest"`
}

// handleEccentricity answers GET /eccentricity?node=a,b,c. The response is
// always a JSON array, one element per requested id in request order —
// including for a single id (the seed returned a bare object for one node
// and an array for many, forcing clients to shape-sniff). The whole batch
// is answered from one pinned snapshot.
func (s *server) handleEccentricity(w http.ResponseWriter, r *http.Request) {
	sv, ok := s.engine(w)
	if !ok {
		return
	}
	raw := r.URL.Query().Get("node")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing_parameter", "missing ?node= (comma-separated ids)")
		return
	}
	parts := strings.Split(raw, ",")
	if s.cfg.MaxBatch > 0 && len(parts) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "batch_too_large",
			"batch of %d ids exceeds the %d-id limit", len(parts), s.cfg.MaxBatch)
		return
	}
	nodes := make([]int, 0, len(parts))
	var extIDs []int64 // requested ids for the trace record
	if s.rec != nil {
		extIDs = make([]int64, 0, len(parts))
	}
	for _, p := range parts {
		v, ok := sv.resolveNode(w, p)
		if !ok {
			return
		}
		nodes = append(nodes, v)
		if s.rec != nil {
			extIDs = append(extIDs, sv.ids.external(v))
		}
	}
	snap := sv.dyn.Snapshot()
	// The batched path dedups repeated ids and amortizes one hull scan over
	// the batch; the pooled buffer keeps the query itself allocation-free.
	buf := resistecc.GetBatchBuf()
	vals, err := snap.Index.QueryBatch(nodes, buf)
	if err != nil {
		buf.Release()
		// Unreachable through resolveNode, but surface it cleanly.
		writeError(w, http.StatusBadRequest, "bad_node_id", "%v", err)
		return
	}
	out := make([]eccResponse, len(vals))
	for i, v := range vals {
		out[i] = eccResponse{
			Node:         sv.ids.external(v.Node),
			Eccentricity: v.Value,
			Farthest:     sv.ids.external(v.Farthest),
		}
	}
	buf.Release()
	setGeneration(w, snap.Generation)
	if s.rec != nil {
		op := trace.OpQuery
		if len(out) > 1 {
			op = trace.OpBatchQuery
		}
		res := make([]trace.EccResult, len(out))
		for i, o := range out {
			res[i] = trace.EccResult{Node: o.Node, Ecc: o.Eccentricity, Farthest: o.Farthest}
		}
		s.rec.Record(op, snap.Generation, trace.DigestQuery(res), extIDs...)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleResistance(w http.ResponseWriter, r *http.Request) {
	sv, ok := s.engine(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	if q.Get("u") == "" || q.Get("v") == "" {
		writeError(w, http.StatusBadRequest, "missing_parameter", "need integer ?u= and ?v=")
		return
	}
	u, ok := sv.resolveNode(w, q.Get("u"))
	if !ok {
		return
	}
	v, ok := sv.resolveNode(w, q.Get("v"))
	if !ok {
		return
	}
	snap := sv.dyn.Snapshot()
	setGeneration(w, snap.Generation)
	writeJSON(w, http.StatusOK, map[string]any{
		"u": sv.ids.external(u), "v": sv.ids.external(v),
		"resistance": snap.Index.Resistance(u, v),
	})
}

// handleSummary serves the distribution summary, cached per index
// generation: the full distribution scan and the O(l²) hull-pair diameter
// run once after each generation swap; within a generation /summary is O(1).
func (s *server) handleSummary(w http.ResponseWriter, _ *http.Request) {
	sv, ok := s.engine(w)
	if !ok {
		return
	}
	snap := sv.dyn.Snapshot()
	s.sumMu.Lock()
	// The cache key is (engine, generation): generations are monotone within
	// one engine but can repeat across a replica re-base, which swaps the
	// whole engine pointer.
	if s.sumFor != sv || s.sumGen != snap.Generation {
		sum := resistecc.Summarize(snap.Index.Distribution())
		s.sum = summaryResponse{
			Radius:   sum.Radius,
			Diameter: sum.Diameter,
			Mean:     sum.Mean,
			Skewness: sum.Skewness,
			Center:   sv.ids.externals(sum.Center),
		}
		// A hull boundary under two nodes has no pair to scan; the summary
		// then omits the hull-pair diameter instead of reporting a fake
		// (0, [0 0]) answer.
		if diam, pair, err := snap.Index.ResistanceDiameter(); err == nil {
			s.sum.HullDiameter = diam
			s.sum.DiameterPair = sv.ids.externals(pair[:])
		}
		s.sumFor = sv
		s.sumGen = snap.Generation
	}
	out := s.sum
	s.sumMu.Unlock()
	setGeneration(w, snap.Generation)
	writeJSON(w, http.StatusOK, out)
}

// edgeRequest is the POST /v1/edges body: one undirected edge in external
// node ids.
type edgeRequest struct {
	U *int64 `json:"u"`
	V *int64 `json:"v"`
}

// mutationResponse reports an accepted mutation: the generation now serving
// it, whether it was absorbed incrementally or awaits a rebuild, and the
// accumulated drift bound.
type mutationResponse struct {
	U                int64   `json:"u"`
	V                int64   `json:"v"`
	Generation       uint64  `json:"generation"`
	Mode             string  `json:"mode"`
	Drift            float64 `json:"drift"`
	RebuildScheduled bool    `json:"rebuildScheduled"`
}

// resolveMutationNodes maps the external endpoints of a mutation to internal
// ids. Mutations are confined to the served component: ids outside it are a
// 404, exactly like queries.
func (sv *serving) resolveMutationNodes(w http.ResponseWriter, uExt, vExt int64) (int, int, bool) {
	u, ok := sv.ids.toInternal[uExt]
	if !ok {
		writeError(w, http.StatusNotFound, "node_not_found",
			"node %d not in the largest connected component", uExt)
		return 0, 0, false
	}
	v, ok := sv.ids.toInternal[vExt]
	if !ok {
		writeError(w, http.StatusNotFound, "node_not_found",
			"node %d not in the largest connected component", vExt)
		return 0, 0, false
	}
	return u, v, true
}

// writeMutationError maps library sentinels to HTTP codes. Messages are
// phrased with the client's external ids — the wrapped library error names
// internal LCC indices, which mean nothing to callers.
func writeMutationError(w http.ResponseWriter, uExt, vExt int64, err error) {
	switch {
	case errors.Is(err, resistecc.ErrDuplicateEdge):
		writeError(w, http.StatusConflict, "duplicate_edge",
			"edge (%d,%d) is already present", uExt, vExt)
	case errors.Is(err, resistecc.ErrEdgeNotFound):
		writeError(w, http.StatusNotFound, "edge_not_found",
			"edge (%d,%d) is not present", uExt, vExt)
	case errors.Is(err, resistecc.ErrDisconnected):
		writeError(w, http.StatusConflict, "would_disconnect",
			"removing edge (%d,%d) would disconnect the graph", uExt, vExt)
	case errors.Is(err, resistecc.ErrSelfLoop):
		writeError(w, http.StatusBadRequest, "self_loop",
			"self loop (%d,%d) is not allowed", uExt, vExt)
	case errors.Is(err, resistecc.ErrNodeOutOfRange):
		writeError(w, http.StatusNotFound, "node_not_found",
			"edge (%d,%d) names a node outside the served component", uExt, vExt)
	case errors.Is(err, resistecc.ErrIndexClosed):
		writeError(w, http.StatusServiceUnavailable, "index_closed", "index is shut down")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "mutation_timeout", "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	}
}

func (s *server) writeMutation(w http.ResponseWriter, op trace.Op, uExt, vExt int64, res resistecc.MutationResult) {
	setGeneration(w, res.Generation)
	s.rec.Record(op, res.Generation,
		trace.DigestMutation(res.Generation, string(res.Mode), res.Drift), uExt, vExt)
	writeJSON(w, http.StatusOK, mutationResponse{
		U: uExt, V: vExt,
		Generation:       res.Generation,
		Mode:             string(res.Mode),
		Drift:            res.Drift,
		RebuildScheduled: res.RebuildScheduled,
	})
}

// handleAddEdge implements POST /v1/edges with body {"u":…,"v":…}.
func (s *server) handleAddEdge(w http.ResponseWriter, r *http.Request) {
	var req edgeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.U == nil || req.V == nil {
		writeError(w, http.StatusBadRequest, "bad_request",
			`body must be JSON {"u":<id>,"v":<id>}`)
		return
	}
	sv, ok := s.engine(w)
	if !ok {
		return
	}
	u, v, ok := sv.resolveMutationNodes(w, *req.U, *req.V)
	if !ok {
		return
	}
	res, err := sv.dyn.AddEdge(r.Context(), u, v)
	if err != nil {
		writeMutationError(w, *req.U, *req.V, err)
		return
	}
	s.writeMutation(w, trace.OpAddEdge, *req.U, *req.V, res)
}

// handleRemoveEdge implements DELETE /v1/edges?u=…&v=….
func (s *server) handleRemoveEdge(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("u") == "" || q.Get("v") == "" {
		writeError(w, http.StatusBadRequest, "missing_parameter", "need integer ?u= and ?v=")
		return
	}
	uExt, err := strconv.ParseInt(strings.TrimSpace(q.Get("u")), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_node_id", "bad node id %q", q.Get("u"))
		return
	}
	vExt, err := strconv.ParseInt(strings.TrimSpace(q.Get("v")), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_node_id", "bad node id %q", q.Get("v"))
		return
	}
	sv, ok := s.engine(w)
	if !ok {
		return
	}
	u, v, ok := sv.resolveMutationNodes(w, uExt, vExt)
	if !ok {
		return
	}
	res, err := sv.dyn.RemoveEdge(r.Context(), u, v)
	if err != nil {
		writeMutationError(w, uExt, vExt, err)
		return
	}
	s.writeMutation(w, trace.OpRemoveEdge, uExt, vExt, res)
}

// handleCheckpoint implements POST /v1/checkpoint: force an immediate
// snapshot into the data directory, absorbing the WAL (e.g. before a planned
// restart, so it comes up warm with nothing to replay). Requires -data-dir;
// while a rebuild is pending the state is inconsistent and the request is
// answered 409 — the rebuild's own checkpoint will cover the backlog.
func (s *server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if !s.durable {
		writeError(w, http.StatusConflict, "not_durable",
			"server has no data directory (start reccd with -data-dir)")
		return
	}
	sv := s.current()
	if err := sv.dyn.Checkpoint(); err != nil {
		if errors.Is(err, resistecc.ErrIndexStale) {
			writeError(w, http.StatusConflict, "index_stale",
				"a rebuild is pending; its checkpoint will persist the backlog")
			return
		}
		writeError(w, http.StatusInternalServerError, "checkpoint_failed", "%v", err)
		return
	}
	ps := sv.dyn.PersistStats()
	snap := sv.dyn.Snapshot()
	setGeneration(w, snap.Generation)
	s.rec.Record(trace.OpCheckpoint, snap.Generation, trace.DigestGen(snap.Generation))
	writeJSON(w, http.StatusOK, map[string]any{
		"checkpointed":    true,
		"snapshotSeq":     ps.SnapshotSeq,
		"generation":      ps.SnapshotGeneration,
		"walRecords":      ps.WALRecords,
		"durationSeconds": ps.LastCheckpointSeconds,
	})
}

// handleRebuild implements POST /v1/rebuild: force a background rebuild
// regardless of drift (e.g. after a burst of stale-mode mutations).
func (s *server) handleRebuild(w http.ResponseWriter, _ *http.Request) {
	sv := s.current()
	// Read the snapshot before triggering: the stamped generation must be
	// deterministically pre-rebuild, both for clients correlating responses
	// and for the trace record (replay verifies against it after running the
	// rebuild to completion).
	snap := sv.dyn.Snapshot()
	sv.dyn.TriggerRebuild()
	setGeneration(w, snap.Generation)
	s.rec.Record(trace.OpRebuild, snap.Generation, trace.DigestGen(snap.Generation))
	writeJSON(w, http.StatusAccepted, map[string]any{
		"scheduled":  true,
		"generation": snap.Generation,
	})
}

package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"resistecc/internal/obs"
	"resistecc/internal/repl"
	"resistecc/internal/trace"
)

// routerServer is the thin routing tier: it holds no index, only a pool of
// backends. Reads consistent-hash onto healthy replicas (honoring the
// caller's X-Min-Generation read-your-writes floor, retrying the next
// candidate when a replica dies mid-request, falling back to the writer);
// mutations proxy straight to the writer, single-attempt.
type routerServer struct {
	// All four fields are set in newRouterServer before the listener
	// exists and never reassigned; handlers share them read-only. Mutable
	// routing state lives inside the pool, which synchronizes itself.
	pool *repl.Pool
	cfg  serverConfig
	reg  *obs.Registry

	// rec captures proxied operations (-trace-out) through a response tee;
	// nil when recording is off. The recorder serializes its own writes.
	rec *trace.Recorder
}

func newRouterServer(ctx context.Context, cfg Config) (*routerServer, error) {
	client := &http.Client{Timeout: 2 * time.Minute}
	pool := repl.NewPool(cfg.Upstream, cfg.Replicas, client, cfg.PollInterval)
	rs := &routerServer{pool: pool, cfg: cfg.Server, reg: obs.NewRegistry("reccd")}
	if rs.cfg.TraceOut != "" {
		rec, err := trace.NewRecorder(rs.cfg.TraceOut, trace.RecorderOptions{SyncEvery: rs.cfg.TraceSync})
		if err != nil {
			return nil, fmt.Errorf("opening trace recorder: %w", err)
		}
		rs.rec = rec
		publishTraceMetrics(rs.reg, rec)
	}
	rs.publishRouterMetrics()
	pool.Start(ctx)
	return rs, nil
}

func (rs *routerServer) close() {
	rs.pool.Stop()
	if err := rs.rec.Close(); err != nil {
		log.Printf("reccd: closing trace recorder: %v", err)
	}
}

func (rs *routerServer) publishRouterMetrics() {
	rs.reg.SetCounterFunc("router_proxied_total", func() float64 { return float64(rs.pool.Stats().Proxied) })
	rs.reg.SetCounterFunc("router_retries_total", func() float64 { return float64(rs.pool.Stats().Retries) })
	rs.reg.SetCounterFunc("router_writer_fallbacks_total", func() float64 { return float64(rs.pool.Stats().WriterFallbacks) })
	rs.reg.SetCounterFunc("router_no_backend_total", func() float64 { return float64(rs.pool.Stats().NoBackend) })
	healthGauge := func(b *repl.Backend) func() float64 {
		return func() float64 {
			if b.Healthy() {
				return 1
			}
			return 0
		}
	}
	// Per-backend series are label values on two fixed names, not
	// per-backend names: metrichygiene forbids dynamically-constructed
	// metric names, and labels are what Prometheus dimensions are for.
	for i, b := range rs.pool.Replicas() {
		b := b
		rs.reg.SetLabeledGaugeFunc("router_backend_healthy", "backend", strconv.Itoa(i), healthGauge(b))
		rs.reg.SetLabeledGaugeFunc("router_backend_generation", "backend", strconv.Itoa(i), func() float64 { return float64(b.Generation()) })
	}
	w := rs.pool.Writer()
	rs.reg.SetGaugeFunc("router_writer_healthy", healthGauge(w))
	rs.reg.SetGaugeFunc("router_writer_generation", func() float64 { return float64(w.Generation()) })
}

// handleHealth reports the router's own state: per-backend health and
// generation plus routing counters. A router with zero healthy backends is
// itself unhealthy (503) so load balancers eject it.
func (rs *routerServer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	type backendView struct {
		URL        string `json:"url"`
		Healthy    bool   `json:"healthy"`
		Generation uint64 `json:"generation"`
	}
	type routingView struct {
		Proxied         uint64 `json:"proxied"`
		Retries         uint64 `json:"retries"`
		WriterFallbacks uint64 `json:"writerFallbacks"`
		NoBackend       uint64 `json:"noBackend"`
	}
	// The degraded 503 must carry the {"error":{code,message}} envelope like
	// every other non-2xx — apisurface checks the body type at the writeJSON
	// call below — so the health view embeds an optional envelope field next
	// to its diagnostics.
	type healthView struct {
		Role     string         `json:"role"`
		Status   string         `json:"status"`
		Writer   backendView    `json:"writer"`
		Replicas []backendView  `json:"replicas"`
		Routing  routingView    `json:"routing"`
		Error    *obs.ErrorBody `json:"error,omitempty"`
	}
	wr := rs.pool.Writer()
	body := healthView{
		Role:   roleRouter,
		Writer: backendView{URL: wr.URL, Healthy: wr.Healthy(), Generation: wr.Generation()},
	}
	healthy := 0
	if wr.Healthy() {
		healthy++
	}
	for _, b := range rs.pool.Replicas() {
		if b.Healthy() {
			healthy++
		}
		body.Replicas = append(body.Replicas, backendView{URL: b.URL, Healthy: b.Healthy(), Generation: b.Generation()})
	}
	st := rs.pool.Stats()
	body.Routing = routingView{
		Proxied:         st.Proxied,
		Retries:         st.Retries,
		WriterFallbacks: st.WriterFallbacks,
		NoBackend:       st.NoBackend,
	}
	if healthy == 0 {
		body.Status = "degraded"
		body.Error = &obs.ErrorBody{Code: "degraded", Message: "no healthy backends"}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body.Status = "ok"
	writeJSON(w, http.StatusOK, body)
}

// handler assembles the router's stack: reads fan out over the pool,
// mutations go to the writer, health and metrics are answered locally.
func (rs *routerServer) handler(logger *log.Logger) http.Handler {
	mux := http.NewServeMux()
	proxyRead := rs.reg.InstrumentFunc("proxy_read", rs.pool.ProxyQuery)
	mux.Handle("GET /v1/eccentricity", traceProxy(rs.rec, proxyRead, recordProxiedQuery))
	mux.Handle("GET /v1/resistance", proxyRead)
	mux.Handle("GET /v1/summary", proxyRead)
	proxyWrite := rs.reg.InstrumentFunc("proxy_write", rs.pool.ProxyWriter)
	mux.Handle("POST /v1/edges", traceProxy(rs.rec, proxyWrite, recordProxiedMutation))
	mux.Handle("DELETE /v1/edges", traceProxy(rs.rec, proxyWrite, recordProxiedMutation))
	mux.Handle("POST /v1/rebuild", traceProxy(rs.rec, proxyWrite, recordProxiedControl(trace.OpRebuild)))
	mux.Handle("POST /v1/checkpoint", traceProxy(rs.rec, proxyWrite, recordProxiedControl(trace.OpCheckpoint)))
	mux.Handle("GET /v1/healthz", rs.reg.InstrumentFunc("healthz", rs.handleHealth))
	mux.Handle("GET /v1/metrics", rs.reg.Instrument("metrics", rs.reg))
	if rs.cfg.Pprof {
		mountPprof(mux)
	}
	var h http.Handler = withEnvelope(mux)
	h = rs.reg.LimitInFlightWith(rs.cfg.MaxInFlight, h, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "overloaded", "router overloaded; retry")
	}))
	return obs.AccessLog(logger, h)
}

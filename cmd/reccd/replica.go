package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"resistecc"
	"resistecc/internal/obs"
	"resistecc/internal/persist"
	"resistecc/internal/repl"
)

// replicaFollower adapts the server's swappable engine to repl.Follower: a
// restore loads the shipped snapshot as a follower-mode DynamicIndex (never
// rebuilds locally, so its state is a pure function of snapshot + applied
// records — bit-identical to the writer at the same sequence), fetches the
// writer's id mapping, and swaps both in as one unit.
type replicaFollower struct {
	s        *server
	upstream string
	client   *http.Client
}

func (rf *replicaFollower) Seq() uint64 {
	if sv := rf.s.current(); sv != nil {
		return sv.dyn.Seq()
	}
	return 0
}

func (rf *replicaFollower) Generation() uint64 {
	if sv := rf.s.current(); sv != nil {
		return sv.dyn.Snapshot().Generation
	}
	return 0
}

// Apply replays one writer mutation. Records carry internal LCC ids, so no
// translation happens here. A mutation the follower cannot absorb
// incrementally leaves it stale (it keeps serving the pre-rebuild answers
// the writer also served until its own rebuild finished); the tailer's
// generation-mismatch rule re-bases once the writer checkpoints.
func (rf *replicaFollower) Apply(ctx context.Context, rec persist.Record) error {
	sv := rf.s.current()
	if sv == nil {
		return fmt.Errorf("reccd: no engine to apply seq %d to", rec.Seq)
	}
	var err error
	if rec.Add {
		_, err = sv.dyn.AddEdge(ctx, rec.U, rec.V)
	} else {
		_, err = sv.dyn.RemoveEdge(ctx, rec.U, rec.V)
	}
	return err
}

// Restore replaces the engine with the shipped snapshot. The old engine is
// closed after the swap; snapshots already pinned by in-flight requests
// keep answering (RCU — closing an index never invalidates its snapshots).
func (rf *replicaFollower) Restore(ctx context.Context, snapshot []byte) error {
	dyn, err := resistecc.LoadSnapshotBytes(snapshot, resistecc.WithFollower())
	if err != nil {
		return err
	}
	ids, err := rf.fetchIDs(ctx)
	if err != nil {
		dyn.Close()
		return err
	}
	old := rf.s.cur.Swap(&serving{dyn: dyn, ids: ids})
	if old != nil {
		old.dyn.Close()
	}
	return nil
}

// fetchIDs pulls the writer's id mapping, rebuilt on every restore — the
// shipped graph and the mapping must describe the same state.
func (rf *replicaFollower) fetchIDs(ctx context.Context) (*idMap, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rf.upstream+"/v1/repl/ids", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rf.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("reccd: id-map fetch: writer answered %s", resp.Status)
	}
	var body struct {
		ToExternal []int64 `json:"toExternal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("reccd: decoding id map: %w", err)
	}
	m := &idMap{toExternal: body.ToExternal, toInternal: make(map[int64]int, len(body.ToExternal))}
	for v, ext := range body.ToExternal {
		m.toInternal[ext] = v
	}
	return m, nil
}

// newReplicaServer builds a read replica: it blocks until one full sync
// against the writer succeeds (retrying while ctx lives), then keeps
// converging in the background. The returned server serves the same /v1
// read surface as a writer; mutations answer 403.
func newReplicaServer(ctx context.Context, cfg Config) (*server, error) {
	s := &server{
		role: roleReplica,
		cfg:  cfg.Server,
		reg:  obs.NewRegistry("reccd"),
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	follower := &replicaFollower{s: s, upstream: cfg.Upstream, client: client}
	tailer, err := repl.NewTailer(repl.TailerConfig{
		Upstream: cfg.Upstream,
		Follower: follower,
		Client:   client,
		Interval: cfg.PollInterval,
	})
	if err != nil {
		return nil, err
	}
	s.tailer = tailer

	// First sync, inline: the replica must not listen before it can answer.
	start := time.Now()
	for {
		err := tailer.Sync(ctx)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		log.Printf("reccd: initial sync against %s: %v; retrying", cfg.Upstream, err)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Second):
		}
	}
	s.buildTime = time.Since(start)
	sv := s.current()
	s.totalNodes = sv.dyn.Snapshot().N
	s.totalEdges = sv.dyn.Snapshot().M
	// Replicas record too: the shared query handlers hook the recorder, so a
	// replica's trace captures the read workload it served.
	if err := s.openRecorder(); err != nil {
		s.close()
		return nil, err
	}
	s.publishBuildGauges()
	s.publishLifecycleGauges()
	s.publishReplicaMetrics()
	tailer.Start(ctx)
	return s, nil
}

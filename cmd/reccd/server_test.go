package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"resistecc"
)

// twoComponentFile writes an edge list whose largest component carries the
// labels 10..14 (a path with a chord) and whose second component is 1-2.
// Crucially, labels do not start at 0 and the small component's labels (1,
// 2) ARE valid internal indices of the 5-node LCC — exactly the situation
// where the seed server answered for the wrong nodes.
func twoComponentFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "two.txt")
	data := "# two components\n10 11\n11 12\n12 13\n13 14\n10 12\n1 2\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadServer mirrors main()'s load path: read, reduce to LCC, keep the
// composed id mapping.
func loadServer(t *testing.T, path string, opts []resistecc.Option) (*server, *resistecc.Graph, *idMap) {
	t.Helper()
	g, labels, err := resistecc.LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	lcc, mapping := g.LargestComponent()
	ids := newIDMap(lcc.N(), labels, mapping)
	srv, err := newServer(context.Background(), lcc, ids, g.N(), g.M(), opts, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	return srv, lcc, ids
}

// TestDisconnectedInputIDMapping is the regression test for the headline
// bug: on a disconnected edge list the seed discarded both the edge-list
// label interning and the LCC relabelling, so a query for node 1 — which
// lives in the *dropped* component — was silently answered with the
// eccentricity of internal node 1 (= label 11). Now external ids round-trip
// and ids outside the LCC are a 404.
func TestDisconnectedInputIDMapping(t *testing.T) {
	srv, lcc, ids := loadServer(t, twoComponentFile(t), []resistecc.Option{
		resistecc.WithEpsilon(0.3), resistecc.WithDim(64), resistecc.WithSeed(3),
	})
	h := testHandler(t, srv)

	if lcc.N() != 5 || lcc.M() != 5 {
		t.Fatalf("LCC n=%d m=%d, want 5, 5", lcc.N(), lcc.M())
	}

	// Ground truth: query the index directly by internal id.
	ref, err := resistecc.NewFastIndex(context.Background(), lcc,
		resistecc.WithEpsilon(0.3), resistecc.WithDim(64), resistecc.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	for ext := int64(10); ext <= 14; ext++ {
		rec := get(t, h, fmt.Sprintf("/v1/eccentricity?node=%d", ext))
		if rec.Code != http.StatusOK {
			t.Fatalf("node %d: status %d (%s)", ext, rec.Code, rec.Body.String())
		}
		arr := decodeArr(t, rec)
		if len(arr) != 1 {
			t.Fatalf("node %d: %d results", ext, len(arr))
		}
		if got := int64(arr[0]["node"].(float64)); got != ext {
			t.Fatalf("asked for node %d, response says node %d", ext, got)
		}
		internal, ok := ids.toInternal[ext]
		if !ok {
			t.Fatalf("label %d missing from id map", ext)
		}
		want := ref.Eccentricity(internal)
		if got := arr[0]["eccentricity"].(float64); math.Abs(got-want.Value) > 1e-12 {
			t.Fatalf("node %d: eccentricity %g, want %g", ext, got, want.Value)
		}
		if far := int64(arr[0]["farthest"].(float64)); far < 10 || far > 14 {
			t.Fatalf("node %d: farthest %d is not an original LCC label", ext, far)
		}
	}

	// Nodes of the dropped component: 404, not an answer for somebody else.
	// (The seed accepted node=1 — in range for n=5 — and returned internal
	// node 1's eccentricity, i.e. label 11's.)
	for _, ext := range []string{"1", "2", "999"} {
		rec := get(t, h, "/v1/eccentricity?node="+ext)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("node %s (outside LCC): status %d, want 404 (%s)",
				ext, rec.Code, rec.Body.String())
		}
	}

	// Resistance translates both endpoints too.
	rec := get(t, h, "/v1/resistance?u=10&v=14")
	body := decodeObj(t, rec)
	if rec.Code != http.StatusOK || body["u"].(float64) != 10 || body["v"].(float64) != 14 {
		t.Fatalf("resistance: %d %v", rec.Code, body)
	}
	wantR := ref.Resistance(ids.toInternal[10], ids.toInternal[14])
	if got := body["resistance"].(float64); math.Abs(got-wantR) > 1e-12 {
		t.Fatalf("resistance %g, want %g", got, wantR)
	}
	if rec := get(t, h, "/v1/resistance?u=1&v=10"); rec.Code != http.StatusNotFound {
		t.Fatalf("resistance with dropped-component endpoint: %d, want 404", rec.Code)
	}

	// Summary reports external labels for center and diameter pair.
	rec = get(t, h, "/v1/summary")
	body = decodeObj(t, rec)
	for _, key := range []string{"center", "diameterPair"} {
		for _, v := range body[key].([]any) {
			if lab := int64(v.(float64)); lab < 10 || lab > 14 {
				t.Fatalf("%s contains %d: not an original LCC label (%v)", key, lab, body)
			}
		}
	}

	// Healthz distinguishes the input graph from the indexed LCC.
	body = decodeObj(t, get(t, h, "/v1/healthz"))
	if body["inputNodes"].(float64) != 7 || body["nodes"].(float64) != 5 {
		t.Fatalf("healthz input/LCC dims: %v", body)
	}
}

func TestIDMapComposition(t *testing.T) {
	// Compact interning order for the file above: 10→0, 11→1, 12→2, 13→3,
	// 14→4, 1→5, 2→6. Suppose the LCC kept compact nodes {0,1,2,3,4}.
	labels := []int64{10, 11, 12, 13, 14, 1, 2}
	mapping := []int{0, 1, 2, 3, 4}
	m := newIDMap(5, labels, mapping)
	for v, want := range []int64{10, 11, 12, 13, 14} {
		if m.external(v) != want {
			t.Fatalf("external(%d) = %d, want %d", v, m.external(v), want)
		}
		if got, ok := m.toInternal[want]; !ok || got != v {
			t.Fatalf("toInternal[%d] = %d,%v, want %d", want, got, ok, v)
		}
	}
	if _, ok := m.toInternal[1]; ok {
		t.Fatal("label 1 (dropped component) must not resolve")
	}
	// Identity map (generated graphs).
	id := newIDMap(3, nil, nil)
	if id.external(2) != 2 || id.toInternal[2] != 2 {
		t.Fatal("identity map broken")
	}
	// Out-of-range external() echoes rather than panics.
	if id.external(99) != 99 {
		t.Fatal("out-of-range echo broken")
	}
}

// TestGracefulShutdownDrain exercises the production server wrapper: the
// configured http.Server must have non-zero timeouts, and Shutdown must let
// an in-flight request finish while refusing new connections.
func TestGracefulShutdownDrain(t *testing.T) {
	entered := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		time.Sleep(300 * time.Millisecond)
		w.Write([]byte("done"))
	})
	cfg := defaultConfig()
	hs := httpServer("127.0.0.1:0", slow, cfg)
	if hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("server timeouts not set: %+v", hs)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		code int
		body string
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode, body: string(b)}
	}()

	<-entered // the request is in the handler; now shut down underneath it
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()

	res := <-inflight
	if res.err != nil || res.code != http.StatusOK || res.body != "done" {
		t.Fatalf("in-flight request not drained: %+v", res)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
	// New connections are refused after shutdown.
	if _, err := http.Get(base + "/slow"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
}

// TestConcurrentQueries hammers the full middleware stack from many
// goroutines; run with -race this guards the lock-free metrics paths and
// the summary Once.
func TestConcurrentQueries(t *testing.T) {
	srv := testServer(t)
	h := srv.handler(log.New(io.Discard, "", 0))
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 30; i++ {
				switch i % 4 {
				case 0:
					get(t, h, fmt.Sprintf("/v1/eccentricity?node=%d", (w*31+i)%120))
				case 1:
					get(t, h, "/v1/resistance?u=0&v=5")
				case 2:
					get(t, h, "/v1/summary")
				case 3:
					get(t, h, "/v1/metrics")
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	rec := get(t, h, "/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics after hammering: %d", rec.Code)
	}
}

package main

import (
	"os"
	"testing"

	"resistecc/internal/testutil"
)

// TestMain fails the suite if any test leaks a goroutine: HTTP test servers
// must be Closed, response bodies drained, and the lifecycle manager behind
// each server shut down.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaksMain(m))
}

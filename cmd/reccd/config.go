package main

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Roles a reccd process can run as. A writer owns the graph and accepts
// mutations; a replica warm-restores from a writer's snapshot and tails its
// WAL; a router fans query batches out over healthy replicas.
const (
	roleWriter  = "writer"
	roleReplica = "replica"
	roleRouter  = "router"
)

// Typed validation errors, so tests (and wrapping scripts parsing stderr)
// can distinguish a missing flag from a nonsensical combination.
var (
	// ErrBadRole rejects a -role outside {writer, replica, router}.
	ErrBadRole = errors.New("reccd: unknown role")
	// ErrMissingFlag rejects a role started without a flag it requires.
	ErrMissingFlag = errors.New("reccd: missing required flag")
	// ErrRoleConflict rejects a flag that contradicts the chosen role.
	ErrRoleConflict = errors.New("reccd: flag conflicts with role")
)

// Config is the full validated flag surface of reccd. Validate enforces the
// role matrix before any work starts, so a mis-assembled replica set fails
// fast at boot instead of serving wrong answers.
type Config struct {
	// Role selects the process mode: writer (default), replica, or router.
	Role string
	// In is the input edge-list file (writer only).
	In string
	// Listen is the HTTP listen address.
	Listen string
	// Eps/Dim/HullCap/Seed configure the index build (writer only; replicas
	// inherit the writer's parameters through the shipped snapshot).
	Eps     float64
	Dim     int
	HullCap int
	Seed    int64
	// Upstream is the writer's base URL (replica and router).
	Upstream string
	// Replicas are replica base URLs the router spreads reads over.
	Replicas []string
	// PollInterval is the replica WAL-tail poll period and the router
	// health-check period (0 = role default).
	PollInterval time.Duration
	// Server holds the request-handling knobs shared by every role.
	Server serverConfig
}

// Validate checks the role matrix. It returns the first violation, wrapped
// around the typed sentinel that classifies it.
func (c *Config) Validate() error {
	switch c.Role {
	case roleWriter:
		if c.In == "" {
			return fmt.Errorf("%w: -role=writer needs -in", ErrMissingFlag)
		}
		if c.Upstream != "" {
			return fmt.Errorf("%w: -upstream is for replicas and routers", ErrRoleConflict)
		}
		if len(c.Replicas) > 0 {
			return fmt.Errorf("%w: -replicas is for routers", ErrRoleConflict)
		}
	case roleReplica:
		if c.Upstream == "" {
			return fmt.Errorf("%w: -role=replica needs -upstream", ErrMissingFlag)
		}
		if c.In != "" {
			return fmt.Errorf("%w: a replica takes its graph from the writer, not -in", ErrRoleConflict)
		}
		if c.Server.DataDir != "" {
			return fmt.Errorf("%w: a replica's state is the writer's; -data-dir is writer-only", ErrRoleConflict)
		}
		if c.Server.CheckpointInterval != 0 {
			return fmt.Errorf("%w: replicas never checkpoint; -checkpoint-interval is writer-only", ErrRoleConflict)
		}
		if len(c.Replicas) > 0 {
			return fmt.Errorf("%w: -replicas is for routers", ErrRoleConflict)
		}
	case roleRouter:
		if c.Upstream == "" {
			return fmt.Errorf("%w: -role=router needs -upstream (the writer)", ErrMissingFlag)
		}
		if len(c.Replicas) == 0 {
			return fmt.Errorf("%w: -role=router needs -replicas", ErrMissingFlag)
		}
		if c.In != "" {
			return fmt.Errorf("%w: a router holds no index; drop -in", ErrRoleConflict)
		}
		if c.Server.DataDir != "" {
			return fmt.Errorf("%w: a router holds no index; drop -data-dir", ErrRoleConflict)
		}
		if c.Server.CheckpointInterval != 0 {
			return fmt.Errorf("%w: a router holds no index; drop -checkpoint-interval", ErrRoleConflict)
		}
	default:
		return fmt.Errorf("%w: %q (want writer, replica or router)", ErrBadRole, c.Role)
	}
	if c.Server.LegacyRoutes && c.Role == roleRouter {
		return fmt.Errorf("%w: legacy routes exist on index-serving roles only", ErrRoleConflict)
	}
	return nil
}

// splitList parses a comma-separated flag value into its non-empty parts.
func splitList(raw string) []string {
	var out []string
	for _, p := range strings.Split(raw, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resistecc"
)

func do(t *testing.T, h http.Handler, method, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, url, rd))
	return rec
}

// TestMutationEndpoints walks the whole mutation surface on the
// two-component file: external-id translation, sentinel→status mapping and
// the structured envelope on every failure.
func TestMutationEndpoints(t *testing.T) {
	srv, _, _ := loadServer(t, twoComponentFile(t), []resistecc.Option{
		resistecc.WithEpsilon(0.3), resistecc.WithDim(64), resistecc.WithSeed(3),
	})
	h := testHandler(t, srv)

	// Removing the bridge 13–14 would disconnect node 14: refused, and the
	// index generation does not move.
	rec := do(t, h, http.MethodDelete, "/v1/edges?u=13&v=14", "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("bridge removal: status %d (%s)", rec.Code, rec.Body.String())
	}
	if code, _ := decodeErrEnvelope(t, rec); code != "would_disconnect" {
		t.Fatalf("bridge removal code %q", code)
	}
	if g := srv.current().dyn.Snapshot().Generation; g != 1 {
		t.Fatalf("failed mutation moved generation to %d", g)
	}

	// A successful add: external ids in, generation 2 out.
	rec = do(t, h, http.MethodPost, "/v1/edges", `{"u":10,"v":14}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("add: status %d (%s)", rec.Code, rec.Body.String())
	}
	body := decodeObj(t, rec)
	if body["u"].(float64) != 10 || body["v"].(float64) != 14 ||
		body["generation"].(float64) != 2 || body["mode"] != "incremental" {
		t.Fatalf("add body %v", body)
	}
	if rec.Header().Get("X-Index-Generation") != "2" {
		t.Fatalf("add generation header %q", rec.Header().Get("X-Index-Generation"))
	}

	// Queries now see the new generation.
	if q := get(t, h, "/v1/eccentricity?node=10"); q.Header().Get("X-Index-Generation") != "2" {
		t.Fatalf("query generation header %q", q.Header().Get("X-Index-Generation"))
	}

	// With the 10–14 chord in place the former bridge is removable.
	rec = do(t, h, http.MethodDelete, "/v1/edges?u=13&v=14", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("unbridged removal: status %d (%s)", rec.Code, rec.Body.String())
	}
	if g := decodeObj(t, rec)["generation"].(float64); g != 3 {
		t.Fatalf("removal generation %v", g)
	}

	// Failure mapping table.
	for _, tc := range []struct {
		method, url, body string
		status            int
		code              string
	}{
		{http.MethodPost, "/v1/edges", `{"u":10,"v":12}`, http.StatusConflict, "duplicate_edge"},
		{http.MethodPost, "/v1/edges", `{"u":10,"v":10}`, http.StatusBadRequest, "self_loop"},
		{http.MethodPost, "/v1/edges", `{"u":1,"v":10}`, http.StatusNotFound, "node_not_found"},
		{http.MethodPost, "/v1/edges", `{"u":10}`, http.StatusBadRequest, "bad_request"},
		{http.MethodPost, "/v1/edges", `not json`, http.StatusBadRequest, "bad_request"},
		{http.MethodDelete, "/v1/edges?u=13&v=14", "", http.StatusNotFound, "edge_not_found"},
		{http.MethodDelete, "/v1/edges?u=10&v=999", "", http.StatusNotFound, "node_not_found"},
		{http.MethodDelete, "/v1/edges?u=10", "", http.StatusBadRequest, "missing_parameter"},
		{http.MethodDelete, "/v1/edges?u=x&v=10", "", http.StatusBadRequest, "bad_node_id"},
	} {
		rec := do(t, h, tc.method, tc.url, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.url, rec.Code, tc.status, rec.Body.String())
			continue
		}
		if code, _ := decodeErrEnvelope(t, rec); code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.url, code, tc.code)
		}
	}

	// Forcing a rebuild is always accepted.
	rec = do(t, h, http.MethodPost, "/v1/rebuild", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("rebuild: status %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.current().dyn.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryCachePerGeneration: the summary cache must be keyed by index
// generation — stable within one generation, recomputed after a mutation.
func TestSummaryCachePerGeneration(t *testing.T) {
	srv, _, _ := loadServer(t, twoComponentFile(t), []resistecc.Option{
		resistecc.WithEpsilon(0.3), resistecc.WithDim(64), resistecc.WithSeed(3),
	})
	h := testHandler(t, srv)

	first := get(t, h, "/v1/summary")
	if first.Code != http.StatusOK || first.Header().Get("X-Index-Generation") != "1" {
		t.Fatalf("summary gen 1: %d %q", first.Code, first.Header().Get("X-Index-Generation"))
	}
	if again := get(t, h, "/v1/summary"); again.Body.String() != first.Body.String() {
		t.Fatal("summary not cached within a generation")
	}

	if rec := do(t, h, http.MethodPost, "/v1/edges", `{"u":10,"v":14}`); rec.Code != http.StatusOK {
		t.Fatalf("add: %d (%s)", rec.Code, rec.Body.String())
	}

	second := get(t, h, "/v1/summary")
	if second.Header().Get("X-Index-Generation") != "2" {
		t.Fatalf("summary gen after mutation: %q", second.Header().Get("X-Index-Generation"))
	}
	// The chord shrinks worst-case resistances, so the cached payload must
	// actually have been recomputed, not replayed.
	if second.Body.String() == first.Body.String() {
		t.Fatal("summary cache not invalidated by generation change")
	}
}

// TestMixedWorkloadNoDowntime is the acceptance scenario of the dynamic
// serving core: readers hammer /v1/eccentricity while a writer streams edge
// additions whose drift forces background rebuilds. Requirements: zero 5xx,
// a monotone non-decreasing X-Index-Generation per client, and — once the
// queue drains and the final rebuild lands — answers bit-identical to a cold
// build of the final graph.
func TestMixedWorkloadNoDowntime(t *testing.T) {
	g, err := resistecc.ScaleFreeMixed(120, 1, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := []resistecc.Option{
		resistecc.WithEpsilon(0.3), resistecc.WithDim(64),
		resistecc.WithSeed(5), resistecc.WithMaxHullVertices(24),
	}
	cfg := defaultConfig()
	cfg.MaxInFlight = 0 // shedding is a 503; this test demands zero 5xx
	// Every mutation crosses the drift threshold, so each add schedules a
	// background rebuild racing the readers.
	cfg.DriftThreshold = 1e-9
	// Keep a pristine copy for the cold reference build (the server clones
	// its input, so g itself also stays untouched — this is belt and braces).
	final := g.Clone()
	srv, err := newServer(context.Background(), g, newIDMap(g.N(), nil, nil), g.N(), g.M(), opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	h := testHandler(t, srv)

	// Deterministic batch of currently-absent edges.
	var adds [][2]int
	for i := 0; len(adds) < 12 && i < 2000; i++ {
		u, v := (i*13)%120, (i*57+31)%120
		if u == v || final.HasEdge(u, v) {
			continue
		}
		adds = append(adds, [2]int{u, v})
		if err := final.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	if len(adds) < 12 {
		t.Fatalf("only %d candidate edges", len(adds))
	}

	var (
		server5xx  atomic.Int64
		nonMono    atomic.Int64
		writerDone = make(chan struct{})
		wg         sync.WaitGroup
	)
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastGen := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-writerDone:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
					fmt.Sprintf("/v1/eccentricity?node=%d", (r*31+i)%120), nil))
				if rec.Code >= 500 {
					server5xx.Add(1)
				}
				gen, err := strconv.ParseUint(rec.Header().Get("X-Index-Generation"), 10, 64)
				if err != nil || gen < lastGen {
					nonMono.Add(1)
				}
				lastGen = gen
			}
		}(r)
	}

	for _, e := range adds {
		rec := do(t, h, http.MethodPost, "/v1/edges",
			fmt.Sprintf(`{"u":%d,"v":%d}`, e[0], e[1]))
		if rec.Code != http.StatusOK {
			t.Errorf("add %v: status %d (%s)", e, rec.Code, rec.Body.String())
		}
	}
	close(writerDone)
	wg.Wait()

	if n := server5xx.Load(); n != 0 {
		t.Fatalf("%d server errors during the mixed workload", n)
	}
	if n := nonMono.Load(); n != 0 {
		t.Fatalf("%d non-monotone or missing generation headers", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.current().dyn.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	st := srv.current().dyn.Stats()
	if st.Rebuilds < 1 {
		t.Fatalf("expected at least one background rebuild, stats %+v", st)
	}
	if st.Drift != 0 || st.QueueDepth != 0 {
		t.Fatalf("lifecycle not settled after WaitIdle: %+v", st)
	}

	// After the final rebuild the served index must equal a cold build of
	// the final graph exactly — same seeds, same pipeline, bit-identical.
	cold, err := resistecc.NewFastIndex(ctx, final, opts...)
	if err != nil {
		t.Fatal(err)
	}
	snap := srv.current().dyn.Snapshot()
	if snap.M != final.M() {
		t.Fatalf("snapshot has %d edges, final graph %d", snap.M, final.M())
	}
	if snap.Index.BoundarySize() != cold.BoundarySize() {
		t.Fatalf("hull %d vs cold %d", snap.Index.BoundarySize(), cold.BoundarySize())
	}
	for v := 0; v < final.N(); v++ {
		got, want := snap.Index.Eccentricity(v), cold.Eccentricity(v)
		if got != want {
			t.Fatalf("node %d: served %+v, cold rebuild %+v", v, got, want)
		}
	}
}

package main

import (
	"context"
	"io"
	"log"
	"net/http/httptest"
	"testing"

	"resistecc/internal/trace"
)

// loadgenWorkload is the shared capacity workload: zipf-skewed reads with a
// small mutation mix, dispatched as fast as the concurrency bound allows.
func loadgenWorkload(b *testing.B, ops int) []trace.Record {
	b.Helper()
	w := trace.Workload{
		Nodes: 120, Ops: ops, Seed: 11,
		MaxBatch: 4, MutationRate: 0.05, RemoveFraction: 0.25,
	}
	recs, err := w.Generate()
	if err != nil {
		b.Fatal(err)
	}
	return recs
}

// driveLoad runs the workload against base and reports capacity metrics in
// the units the bench trajectory (BENCH_<n>.json) records: achieved req/s,
// p50/p99 latency in ms, and the 5xx count (which must stay 0).
func driveLoad(b *testing.B, recs []trace.Record, base string) {
	b.Helper()
	rep, err := trace.RunLoad(context.Background(), recs, base,
		trace.LoadOptions{Concurrency: 32, AsFast: true})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("load run hit %d transport errors", rep.Errors)
	}
	b.ReportMetric(rep.AchievedRate, "req/s")
	b.ReportMetric(float64(rep.P50.Microseconds())/1e3, "p50_ms")
	b.ReportMetric(float64(rep.P99.Microseconds())/1e3, "p99_ms")
	b.ReportMetric(float64(rep.ServerErrors), "errs_5xx")
}

// BenchmarkLoadgenSingleNode measures one writer serving the capacity
// workload directly.
func BenchmarkLoadgenSingleNode(b *testing.B) {
	srv := durableServer(b, b.TempDir())
	defer srv.close()
	ts := httptest.NewServer(srv.handler(log.New(io.Discard, "", 0)))
	defer ts.Close()
	recs := loadgenWorkload(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		driveLoad(b, recs, ts.URL)
	}
}

// BenchmarkLoadgenReplicated measures the same workload through the router
// of a writer + 2 replicas tier: reads spread over replicas, mutations proxy
// to the writer.
func BenchmarkLoadgenReplicated(b *testing.B) {
	rs := startReplSet(b)
	for _, r := range rs.replicas {
		waitConverged(b, rs.writer, r)
	}
	recs := loadgenWorkload(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		driveLoad(b, recs, rs.routerTS.URL)
	}
}

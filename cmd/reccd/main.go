// Command reccd serves resistance-eccentricity queries over HTTP. It runs as
// one of three roles forming a replicated serving tier:
//
//   - writer (default): loads an edge-list network, reduces it to its largest
//     connected component, builds a FASTQUERY index, and keeps it live across
//     online edge mutations — a generation-numbered DynamicIndex absorbs adds
//     and removals with incremental sketch updates and rebuilds in the
//     background when the accumulated drift crosses its threshold. With
//     -data-dir the index is durable (checksummed snapshots + a mutation WAL,
//     warm restarts) and the writer additionally serves the replication feed
//     under /v1/repl/.
//
//   - replica (-role=replica -upstream=URL): holds no input file; it restores
//     the writer's shipped snapshot, tails its WAL, and serves the same read
//     surface with bit-identical answers at the same sequence. Mutations are
//     refused with 403 "not_writer".
//
//   - router (-role=router -upstream=URL -replicas=URL,URL): holds no index;
//     it consistent-hashes reads over healthy replicas (honoring the caller's
//     X-Min-Generation read-your-writes floor, retrying on replica failure,
//     falling back to the writer) and proxies mutations to the writer.
//
//     reccd -in graph.txt -listen :8080 -eps 0.2 -dim 128 -data-dir /var/lib/reccd
//     reccd -role=replica -upstream http://writer:8080 -listen :8081
//     reccd -role=router -upstream http://writer:8080 -replicas http://r1:8081,http://r2:8082
//
// Node ids in requests and responses are always the original ids from the
// edge-list file. Ids that fall outside the largest connected component
// (the index covers only the LCC, the paper's standard preprocessing) are
// answered with 404.
//
// Endpoints (the pre-v1 unversioned GET aliases are retired; -legacy-routes
// re-mounts them with a Deprecation header for clients mid-migration):
//
//	GET    /v1/healthz                  → {"status":"ok", ...index + lifecycle stats}
//	GET    /v1/eccentricity?node=1,2,3  → [{"node":…,"eccentricity":…,"farthest":…}, …]
//	                                      (always an array, also for a single id)
//	GET    /v1/resistance?u=3&v=9       → {"u":3,"v":9,"resistance":…}
//	GET    /v1/summary                  → {"radius":…,"diameter":…,"center":[…]}
//	GET    /v1/metrics                  → Prometheus text exposition
//	POST   /v1/edges  {"u":3,"v":9}     → add an edge between existing nodes
//	DELETE /v1/edges?u=3&v=9            → remove an edge (refused if it would
//	                                      disconnect the graph)
//	POST   /v1/rebuild                  → force a background index rebuild
//	POST   /v1/checkpoint               → persist a snapshot now (-data-dir only)
//	GET    /v1/repl/status              → replication state of this process
//	GET    /v1/repl/{snapshot,wal,ids}  → replication feed (durable writer only)
//	GET    /debug/pprof/...             → net/http/pprof (only with -pprof)
//
// Every non-2xx response is a structured envelope
// {"error":{"code":…,"message":…}} with a stable machine-readable code.
//
// See README.md, "Operating reccd", "Mutating the graph" and "Running a
// replica set", for flags, timeouts, shedding and the consistency model.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"resistecc"
)

func main() {
	var cfg Config
	cfg.Server = defaultConfig()
	flag.StringVar(&cfg.Role, "role", roleWriter, "process role: writer, replica or router")
	flag.StringVar(&cfg.In, "in", "", "input edge-list file (writer only; required there)")
	flag.StringVar(&cfg.Listen, "listen", ":8080", "listen address")
	flag.Float64Var(&cfg.Eps, "eps", 0.2, "approximation parameter (writer only)")
	flag.IntVar(&cfg.Dim, "dim", 128, "sketch dimension override (writer only)")
	flag.IntVar(&cfg.HullCap, "hullcap", 64, "max hull vertices (writer only)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "sketch seed (writer only)")
	flag.StringVar(&cfg.Upstream, "upstream", "",
		"writer base URL, e.g. http://writer:8080 (replica and router)")
	replicasFlag := flag.String("replicas", "",
		"comma-separated replica base URLs to route reads over (router only)")
	flag.DurationVar(&cfg.PollInterval, "poll-interval", 0,
		"replica WAL-tail poll period / router health-check period (0 = role default)")

	flag.IntVar(&cfg.Server.MaxBatch, "max-batch", cfg.Server.MaxBatch,
		"max node ids per /eccentricity request, 0 = unlimited (oversize → 413)")
	flag.IntVar(&cfg.Server.MaxInFlight, "max-inflight", cfg.Server.MaxInFlight,
		"max concurrently executing requests, 0 = unlimited (excess → 503)")
	flag.DurationVar(&cfg.Server.ReadTimeout, "read-timeout", cfg.Server.ReadTimeout, "HTTP read timeout")
	flag.DurationVar(&cfg.Server.WriteTimeout, "write-timeout", cfg.Server.WriteTimeout, "HTTP write timeout")
	flag.DurationVar(&cfg.Server.IdleTimeout, "idle-timeout", cfg.Server.IdleTimeout, "HTTP idle timeout")
	flag.DurationVar(&cfg.Server.ShutdownGrace, "shutdown-grace", cfg.Server.ShutdownGrace,
		"max wait for in-flight requests on SIGINT/SIGTERM")
	flag.BoolVar(&cfg.Server.Pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Float64Var(&cfg.Server.DriftThreshold, "drift-threshold", 0,
		"accumulated incremental-update drift that triggers a background rebuild (0 = library default)")
	flag.IntVar(&cfg.Server.MaxDeletions, "max-deletions", 0,
		"edge removals absorbed before forcing a rebuild (0 = library default)")
	flag.IntVar(&cfg.Server.MutationQueue, "mutation-queue", 0,
		"mutation queue capacity (0 = library default)")
	flag.StringVar(&cfg.Server.DataDir, "data-dir", "",
		"durable index directory: snapshot + mutation WAL, warm restarts, replication feed (writer only)")
	flag.DurationVar(&cfg.Server.CheckpointInterval, "checkpoint-interval", 0,
		"time-based checkpoint period on top of after-rebuild checkpoints (0 = off; needs -data-dir)")
	flag.BoolVar(&cfg.Server.LegacyRoutes, "legacy-routes", false,
		"re-mount the retired unversioned GET aliases with a Deprecation header")
	flag.StringVar(&cfg.Server.TraceOut, "trace-out", "",
		"record every accepted API operation into this trace file (replay with recc replay)")
	flag.IntVar(&cfg.Server.TraceSync, "trace-sync", 256,
		"fsync the trace after every Nth record (0 = buffer until shutdown)")
	flag.Parse()
	cfg.Replicas = splitList(*replicasFlag)

	if err := cfg.Validate(); err != nil {
		log.Fatalf("reccd: %v", err)
	}

	// The root context is minted once, here: it carries process shutdown
	// (SIGINT/SIGTERM) into index builds, sync loops and serving alike.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger := log.Default()
	var handler http.Handler
	var cleanup func()
	switch cfg.Role {
	case roleWriter:
		srv := startWriter(ctx, cfg)
		handler, cleanup = srv.handler(logger), srv.close
	case roleReplica:
		srv, err := newReplicaServer(ctx, cfg)
		if err != nil {
			log.Fatalf("reccd: starting replica: %v", err)
		}
		log.Printf("reccd: replica synced against %s (generation %d, seq %d) in %s; listening on %s",
			cfg.Upstream, srv.current().dyn.Snapshot().Generation, srv.current().dyn.Seq(),
			srv.buildTime, cfg.Listen)
		handler, cleanup = srv.handler(logger), srv.close
	case roleRouter:
		rs, err := newRouterServer(ctx, cfg)
		if err != nil {
			log.Fatalf("reccd: starting router: %v", err)
		}
		log.Printf("reccd: routing over %d replicas (writer %s); listening on %s",
			len(cfg.Replicas), cfg.Upstream, cfg.Listen)
		handler, cleanup = rs.handler(logger), rs.close
	}
	defer cleanup()

	if err := run(ctx, stop, cfg.Listen, handler, cfg.Server, logger); err != nil {
		log.Fatalf("reccd: %v", err)
	}
}

// startWriter loads the input network and builds the serving index; any
// failure is fatal — a writer that cannot build has nothing to serve.
func startWriter(ctx context.Context, cfg Config) *server {
	g, labels, err := resistecc.LoadEdgeList(cfg.In)
	if err != nil {
		log.Fatalf("reccd: loading %s: %v", cfg.In, err)
	}
	inputNodes, inputEdges := g.N(), g.M()
	// Keep the LCC relabelling: queries arrive with original edge-list ids
	// and must be translated, not trusted as internal indices.
	lcc, mapping := g.LargestComponent()
	ids := newIDMap(lcc.N(), labels, mapping)
	log.Printf("reccd: loaded %s: %d nodes, %d edges; LCC %d nodes, %d edges",
		cfg.In, inputNodes, inputEdges, lcc.N(), lcc.M())

	srv, err := newServer(ctx, lcc, ids, inputNodes, inputEdges, []resistecc.Option{
		resistecc.WithEpsilon(cfg.Eps), resistecc.WithDim(cfg.Dim),
		resistecc.WithSeed(cfg.Seed), resistecc.WithMaxHullVertices(cfg.HullCap),
	}, cfg.Server)
	if err != nil {
		log.Fatalf("reccd: building index: %v", err)
	}
	if cfg.Server.DataDir != "" {
		if srv.recovery.Warm {
			log.Printf("reccd: warm start from %s: generation %d, %d WAL mutations replayed",
				cfg.Server.DataDir, srv.recovery.Generation, srv.recovery.ReplayedMutations)
		} else {
			log.Printf("reccd: cold start (%s); persisting to %s", srv.recovery.Reason, cfg.Server.DataDir)
		}
	}
	st := srv.idx().BuildStats()
	log.Printf("reccd: index ready (d=%d, l=%d, cg-iters=%d, max-residual=%.2e) in %s; listening on %s",
		st.SketchDim, st.HullSize, st.SolverTotalIters, st.SolverMaxResidual,
		srv.buildTime, cfg.Listen)
	return srv
}

// run serves until ctx is cancelled (SIGINT/SIGTERM), then shuts down
// gracefully: the listener closes immediately while in-flight requests get
// ShutdownGrace to drain. stop restores default signal handling so a second
// signal kills hard.
func run(ctx context.Context, stop context.CancelFunc, addr string, h http.Handler,
	cfg serverConfig, logger *log.Logger) error {
	hs := httpServer(addr, h, cfg)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	logger.Printf("reccd: shutdown signal received; draining for up to %s", cfg.ShutdownGrace)
	//recclint:ignore ctxflow the parent ctx is already cancelled here; the drain deadline needs a fresh root
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.ShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("reccd: drained; bye")
	return nil
}

// mountPprof wires the net/http/pprof handlers explicitly (the package's
// init-time DefaultServeMux registration doesn't reach our mux).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

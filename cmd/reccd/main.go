// Command reccd serves resistance-eccentricity queries over HTTP: it loads
// an edge-list network, builds a FASTQUERY index once, and answers
// JSON queries — the deployment shape of the paper's "fast query of a node
// subset Q" use case (a service fronting a large static network).
//
//	reccd -in graph.txt -listen :8080 -eps 0.2 -dim 128
//
// Endpoints:
//
//	GET /healthz                  → {"status":"ok", ...index metadata}
//	GET /eccentricity?node=17     → {"node":17,"eccentricity":…,"farthest":…}
//	GET /eccentricity?node=1,2,3  → [{…},{…},{…}]
//	GET /resistance?u=3&v=9       → {"u":3,"v":9,"resistance":…}
//	GET /summary                  → {"radius":…,"diameter":…,"center":[…]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"resistecc"
)

func main() {
	in := flag.String("in", "", "input edge-list file (required)")
	listen := flag.String("listen", ":8080", "listen address")
	eps := flag.Float64("eps", 0.2, "approximation parameter")
	dim := flag.Int("dim", 128, "sketch dimension override")
	hullCap := flag.Int("hullcap", 64, "max hull vertices")
	seed := flag.Int64("seed", 1, "sketch seed")
	flag.Parse()
	if *in == "" {
		log.Fatal("reccd: -in is required")
	}
	g, _, err := resistecc.LoadEdgeList(*in)
	if err != nil {
		log.Fatalf("reccd: loading %s: %v", *in, err)
	}
	lcc, _ := g.LargestComponent()
	log.Printf("reccd: loaded %s: LCC %d nodes, %d edges", *in, lcc.N(), lcc.M())
	srv, err := newServer(lcc, resistecc.SketchOptions{
		Epsilon: *eps, Dim: *dim, Seed: *seed, MaxHullVertices: *hullCap,
	})
	if err != nil {
		log.Fatalf("reccd: building index: %v", err)
	}
	log.Printf("reccd: index ready (d=%d, l=%d) in %s; listening on %s",
		srv.idx.SketchDim(), srv.idx.BoundarySize(), srv.buildTime, *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.mux()))
}

// server holds the immutable graph and index; queries are read-only and safe
// for concurrent use, with the lazily-computed summary guarded by a Once.
type server struct {
	g         *resistecc.Graph
	idx       *resistecc.FastIndex
	buildTime time.Duration

	summaryOnce sync.Once
	summary     resistecc.DistributionSummary
}

func newServer(g *resistecc.Graph, opt resistecc.SketchOptions) (*server, error) {
	start := time.Now()
	idx, err := g.NewFastIndex(opt)
	if err != nil {
		return nil, err
	}
	return &server{g: g, idx: idx, buildTime: time.Since(start)}, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /eccentricity", s.handleEccentricity)
	mux.HandleFunc("GET /resistance", s.handleResistance)
	mux.HandleFunc("GET /summary", s.handleSummary)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than log.
		log.Printf("reccd: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"nodes":         s.g.N(),
		"edges":         s.g.M(),
		"sketchDim":     s.idx.SketchDim(),
		"hullBoundary":  s.idx.BoundarySize(),
		"indexBuildSec": s.buildTime.Seconds(),
	})
}

type eccResponse struct {
	Node         int     `json:"node"`
	Eccentricity float64 `json:"eccentricity"`
	Farthest     int     `json:"farthest"`
}

func (s *server) handleEccentricity(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("node")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing ?node= (comma-separated ids)")
		return
	}
	parts := strings.Split(raw, ",")
	nodes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad node id %q", p)
			return
		}
		if v < 0 || v >= s.g.N() {
			writeError(w, http.StatusBadRequest, "node %d out of range (n=%d)", v, s.g.N())
			return
		}
		nodes = append(nodes, v)
	}
	vals := s.idx.Query(nodes)
	out := make([]eccResponse, len(vals))
	for i, v := range vals {
		out[i] = eccResponse{Node: v.Node, Eccentricity: v.Value, Farthest: v.Farthest}
	}
	if len(out) == 1 {
		writeJSON(w, http.StatusOK, out[0])
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleResistance(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, err1 := strconv.Atoi(q.Get("u"))
	v, err2 := strconv.Atoi(q.Get("v"))
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, "need integer ?u= and ?v=")
		return
	}
	if u < 0 || v < 0 || u >= s.g.N() || v >= s.g.N() {
		writeError(w, http.StatusBadRequest, "node out of range (n=%d)", s.g.N())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"u": u, "v": v, "resistance": s.idx.Resistance(u, v),
	})
}

func (s *server) handleSummary(w http.ResponseWriter, _ *http.Request) {
	s.summaryOnce.Do(func() {
		s.summary = resistecc.Summarize(s.idx.Distribution())
	})
	diam, pair := s.idx.ResistanceDiameter()
	writeJSON(w, http.StatusOK, map[string]any{
		"radius":       s.summary.Radius,
		"diameter":     s.summary.Diameter,
		"diameterPair": pair,
		"hullDiameter": diam,
		"mean":         s.summary.Mean,
		"skewness":     s.summary.Skewness,
		"center":       s.summary.Center,
	})
}

// Command reccd serves resistance-eccentricity queries over HTTP: it loads
// an edge-list network, reduces it to its largest connected component,
// builds a FASTQUERY index, and keeps it live across online edge mutations
// — a generation-numbered DynamicIndex absorbs adds and removals with
// incremental sketch updates and rebuilds in the background when the
// accumulated drift crosses its threshold. Queries never block on
// mutations; every response carries the X-Index-Generation header of the
// snapshot that answered it.
//
//	reccd -in graph.txt -listen :8080 -eps 0.2 -dim 128
//
// With -data-dir the index is durable: every committed mutation is logged to
// a write-ahead log before it is acknowledged, rebuilds (and the optional
// -checkpoint-interval ticker, and POST /v1/checkpoint) write checksummed
// snapshots, and restarts warm-restore from snapshot + WAL replay instead of
// re-running the solver — falling back to a cold build on any corruption or
// configuration change, never to wrong answers.
//
// Node ids in requests and responses are always the original ids from the
// edge-list file. Ids that fall outside the largest connected component
// (the index covers only the LCC, the paper's standard preprocessing) are
// answered with 404.
//
// Endpoints (each GET is also served at its legacy unversioned path):
//
//	GET    /v1/healthz                  → {"status":"ok", ...index + lifecycle stats}
//	GET    /v1/eccentricity?node=1,2,3  → [{"node":…,"eccentricity":…,"farthest":…}, …]
//	                                      (always an array, also for a single id)
//	GET    /v1/resistance?u=3&v=9       → {"u":3,"v":9,"resistance":…}
//	GET    /v1/summary                  → {"radius":…,"diameter":…,"center":[…]}
//	GET    /v1/metrics                  → Prometheus text exposition
//	POST   /v1/edges  {"u":3,"v":9}     → add an edge between existing nodes
//	DELETE /v1/edges?u=3&v=9            → remove an edge (refused if it would
//	                                      disconnect the graph)
//	POST   /v1/rebuild                  → force a background index rebuild
//	POST   /v1/checkpoint               → persist a snapshot now (-data-dir only)
//	GET    /debug/pprof/...             → net/http/pprof (only with -pprof)
//
// Every non-2xx response is a structured envelope
// {"error":{"code":…,"message":…}} with a stable machine-readable code.
//
// See README.md, "Operating reccd" and "Mutating the graph", for flags,
// timeouts, shedding and the mutation consistency model.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"resistecc"
)

func main() {
	in := flag.String("in", "", "input edge-list file (required)")
	listen := flag.String("listen", ":8080", "listen address")
	eps := flag.Float64("eps", 0.2, "approximation parameter")
	dim := flag.Int("dim", 128, "sketch dimension override")
	hullCap := flag.Int("hullcap", 64, "max hull vertices")
	seed := flag.Int64("seed", 1, "sketch seed")

	cfg := defaultConfig()
	flag.IntVar(&cfg.MaxBatch, "max-batch", cfg.MaxBatch,
		"max node ids per /eccentricity request, 0 = unlimited (oversize → 413)")
	flag.IntVar(&cfg.MaxInFlight, "max-inflight", cfg.MaxInFlight,
		"max concurrently executing requests, 0 = unlimited (excess → 503)")
	flag.DurationVar(&cfg.ReadTimeout, "read-timeout", cfg.ReadTimeout, "HTTP read timeout")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", cfg.WriteTimeout, "HTTP write timeout")
	flag.DurationVar(&cfg.IdleTimeout, "idle-timeout", cfg.IdleTimeout, "HTTP idle timeout")
	flag.DurationVar(&cfg.ShutdownGrace, "shutdown-grace", cfg.ShutdownGrace,
		"max wait for in-flight requests on SIGINT/SIGTERM")
	flag.BoolVar(&cfg.Pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Float64Var(&cfg.DriftThreshold, "drift-threshold", 0,
		"accumulated incremental-update drift that triggers a background rebuild (0 = library default)")
	flag.IntVar(&cfg.MaxDeletions, "max-deletions", 0,
		"edge removals absorbed before forcing a rebuild (0 = library default)")
	flag.IntVar(&cfg.MutationQueue, "mutation-queue", 0,
		"mutation queue capacity (0 = library default)")
	flag.StringVar(&cfg.DataDir, "data-dir", "",
		"durable index directory: snapshot + mutation WAL, warm restarts (empty = in-memory only)")
	flag.DurationVar(&cfg.CheckpointInterval, "checkpoint-interval", 0,
		"time-based checkpoint period on top of after-rebuild checkpoints (0 = off; needs -data-dir)")
	flag.Parse()

	if *in == "" {
		log.Fatal("reccd: -in is required")
	}
	g, labels, err := resistecc.LoadEdgeList(*in)
	if err != nil {
		log.Fatalf("reccd: loading %s: %v", *in, err)
	}
	inputNodes, inputEdges := g.N(), g.M()
	// Keep the LCC relabelling: queries arrive with original edge-list ids
	// and must be translated, not trusted as internal indices.
	lcc, mapping := g.LargestComponent()
	ids := newIDMap(lcc.N(), labels, mapping)
	log.Printf("reccd: loaded %s: %d nodes, %d edges; LCC %d nodes, %d edges",
		*in, inputNodes, inputEdges, lcc.N(), lcc.M())

	// The root context is minted once, here: it carries process shutdown
	// (SIGINT/SIGTERM) into the index build and the serving loop alike.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := newServer(ctx, lcc, ids, inputNodes, inputEdges, []resistecc.Option{
		resistecc.WithEpsilon(*eps), resistecc.WithDim(*dim),
		resistecc.WithSeed(*seed), resistecc.WithMaxHullVertices(*hullCap),
	}, cfg)
	if err != nil {
		log.Fatalf("reccd: building index: %v", err)
	}
	if cfg.DataDir != "" {
		if srv.recovery.Warm {
			log.Printf("reccd: warm start from %s: generation %d, %d WAL mutations replayed",
				cfg.DataDir, srv.recovery.Generation, srv.recovery.ReplayedMutations)
		} else {
			log.Printf("reccd: cold start (%s); persisting to %s", srv.recovery.Reason, cfg.DataDir)
		}
	}
	st := srv.idx().BuildStats()
	log.Printf("reccd: index ready (d=%d, l=%d, cg-iters=%d, max-residual=%.2e) in %s; listening on %s",
		st.SketchDim, st.HullSize, st.SolverTotalIters, st.SolverMaxResidual,
		srv.buildTime, *listen)

	if err := run(ctx, stop, *listen, srv, log.Default()); err != nil {
		log.Fatalf("reccd: %v", err)
	}
}

// run serves until ctx is cancelled (SIGINT/SIGTERM), then shuts down
// gracefully: the listener closes immediately while in-flight requests get
// ShutdownGrace to drain. stop restores default signal handling so a second
// signal kills hard.
func run(ctx context.Context, stop context.CancelFunc, addr string, srv *server, logger *log.Logger) error {
	hs := httpServer(addr, srv.handler(logger), srv.cfg)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	logger.Printf("reccd: shutdown signal received; draining for up to %s", srv.cfg.ShutdownGrace)
	//recclint:ignore ctxflow the parent ctx is already cancelled here; the drain deadline needs a fresh root
	shutdownCtx, cancel := context.WithTimeout(context.Background(), srv.cfg.ShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("reccd: drained; bye")
	return nil
}

// mountPprof wires the net/http/pprof handlers explicitly (the package's
// init-time DefaultServeMux registration doesn't reach our mux).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Command recclint runs the repository's custom static-analysis suite (see
// internal/analysis) over a set of package patterns:
//
//	go run ./cmd/recclint ./...
//
// It exits 0 when the tree is clean, 1 when any analyzer reports a finding,
// and 2 on operational errors (unbuildable packages, bad flags). Findings
// print one per line as file:line:col: [analyzer] message, so editors and CI
// annotate them like compiler errors. -format=sarif emits a SARIF 2.1.0 log
// on stdout instead (for CI code-scanning upload), and -fix applies every
// suggested fix to the source tree, gofmt-formatting the rewritten files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"resistecc/internal/analysis"
	"resistecc/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source tree")
	format := fs.String("format", "text", "output format: text or sarif")
	verbose := fs.Bool("v", false, "print per-analyzer wall time to stderr")
	budget := fs.Duration("budget", 0, "fail (exit 2) when any single analyzer exceeds this wall time; 0 disables")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: recclint [-list] [-fix] [-v] [-budget=30s] [-format=text|sarif] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(stderr, "recclint: unknown -format %q (want text or sarif)\n", *format)
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "recclint: %v\n", err)
		return 2
	}
	pkgs, err := framework.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "recclint: %v\n", err)
		return 2
	}
	findings, timings, err := framework.RunAnalyzersTimed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "recclint: %v\n", err)
		return 2
	}
	if *verbose {
		// Slowest first: the point of the breakdown is spotting the
		// analyzer that is eating the lint budget.
		byTime := make([]*framework.Analyzer, len(analyzers))
		copy(byTime, analyzers)
		sort.SliceStable(byTime, func(i, j int) bool { return timings[byTime[i].Name] > timings[byTime[j].Name] })
		var total time.Duration
		for _, a := range byTime {
			fmt.Fprintf(stderr, "recclint: %-14s %s\n", a.Name, timings[a.Name].Round(10*time.Microsecond))
			total += timings[a.Name]
		}
		fmt.Fprintf(stderr, "recclint: %-14s %s over %d package(s)\n", "total", total.Round(10*time.Microsecond), len(pkgs))
	}
	// A per-analyzer wall-time ceiling keeps the lint gate honest: an
	// analyzer that regresses into quadratic behavior fails CI instead of
	// silently doubling every `make lint`. Findings still print first.
	overBudget := false
	if *budget > 0 {
		for _, a := range analyzers {
			if d := timings[a.Name]; d > *budget {
				fmt.Fprintf(stderr, "recclint: analyzer %s took %s, over the %s budget\n",
					a.Name, d.Round(10*time.Microsecond), *budget)
				overBudget = true
			}
		}
	}
	if *fix && len(findings) > 0 {
		changed, ferr := framework.ApplyFixes(findings)
		for _, file := range changed {
			fmt.Fprintf(stderr, "recclint: fixed %s\n", file)
		}
		if ferr != nil {
			fmt.Fprintf(stderr, "recclint: %v\n", ferr)
			return 2
		}
		fixed := framework.FixableCount(findings)
		remaining := findings[:0]
		for _, f := range findings {
			if len(f.Fixes) == 0 {
				remaining = append(remaining, f)
			}
		}
		findings = remaining
		fmt.Fprintf(stderr, "recclint: applied %d fix(es), %d finding(s) remain\n", fixed, len(findings))
	}
	if *format == "sarif" {
		if err := framework.WriteSARIF(stdout, cwd, analyzers, findings); err != nil {
			fmt.Fprintf(stderr, "recclint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if overBudget {
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "recclint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

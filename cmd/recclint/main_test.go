package main

import (
	"bytes"
	"encoding/json"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{
		"apisurface", "ctxflow", "determinism", "erridentity",
		"floateq", "hotpath", "lockguard", "lockorder",
		"metrichygiene", "mustclose", "syncerr", "wireproto",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %q:\n%s", name, out.String())
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("run(-nonsense) = %d, want 2", code)
	}
}

func TestBadFormatFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-format=xml"}, &out, &errb); code != 2 {
		t.Fatalf("run(-format=xml) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown -format") {
		t.Errorf("stderr does not explain the bad format: %s", errb.String())
	}
}

// runIn runs the CLI from dir, restoring the working directory afterwards.
func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestCleanPackage runs the real loader and suite over one small clean
// package; the full-module sweep lives in internal/analysis's meta-test.
func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"./../../internal/graph"}, &out, &errb); code != 0 {
		t.Fatalf("run over internal/graph = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced findings:\n%s", out.String())
	}
}

// TestFindingsExit1 pins the exit-code contract: findings are exit 1, with
// one file:line:col line per finding on stdout.
func TestFindingsExit1(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	code, out, errb := runIn(t, filepath.Join("testdata", "src", "badpkg"), ".")
	if code != 1 {
		t.Fatalf("run over badpkg = %d, want 1\nstdout: %s\nstderr: %s", code, out, errb)
	}
	for _, want := range []string{"[mustclose]", "[ctxflow]"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout is missing a %s finding:\n%s", want, out)
		}
	}
	if !strings.Contains(errb, "finding(s)") {
		t.Errorf("stderr is missing the summary line: %s", errb)
	}
}

// TestLoaderErrorExit2 pins the other half of the contract: a package that
// fails to type-check is a loader error (exit 2), never reported as exit 1.
func TestLoaderErrorExit2(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	code, out, errb := runIn(t, filepath.Join("testdata", "src", "brokenpkg"), ".")
	if code != 2 {
		t.Fatalf("run over brokenpkg = %d, want 2\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(errb, "recclint:") {
		t.Errorf("stderr does not carry the loader error: %s", errb)
	}
}

// TestSARIFOutput checks -format=sarif emits a valid SARIF 2.1.0 log whose
// results and rules cover the findings text mode would print.
func TestSARIFOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	code, out, errb := runIn(t, filepath.Join("testdata", "src", "badpkg"), "-format=sarif", ".")
	if code != 1 {
		t.Fatalf("run -format=sarif over badpkg = %d, want 1\nstderr: %s", code, errb)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" {
		t.Errorf("SARIF version %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "recclint" {
		t.Fatalf("unexpected runs shape: %+v", log.Runs)
	}
	rules := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = true
	}
	seen := make(map[string]bool)
	for _, res := range log.Runs[0].Results {
		seen[res.RuleID] = true
		if !rules[res.RuleID] {
			t.Errorf("result rule %q is not declared in driver.rules", res.RuleID)
		}
		if res.Message.Text == "" {
			t.Errorf("result %q has an empty message", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Errorf("result %q has %d locations, want 1", res.RuleID, len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "bad.go" {
			t.Errorf("result %q URI %q, want relative bad.go", res.RuleID, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %q has no start line", res.RuleID)
		}
	}
	for _, want := range []string{"mustclose", "ctxflow"} {
		if !seen[want] {
			t.Errorf("SARIF results are missing rule %q", want)
		}
	}
}

// TestFixRoundTrip copies the fixable fixture module aside, applies -fix,
// and checks the rewritten tree is gofmt-clean and lints clean afterwards.
func TestFixRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	dir := t.TempDir()
	src := filepath.Join("testdata", "src", "fixpkg")
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	code, out, errb := runIn(t, dir, "-fix", ".")
	if code != 0 {
		t.Fatalf("run -fix = %d, want 0 (every finding fixable)\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(errb, "applied 1 fix(es)") {
		t.Errorf("stderr does not report the applied fix: %s", errb)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "defer f.Close()") {
		t.Errorf("fix did not insert the deferred Close:\n%s", fixed)
	}
	formatted, err := format.Source(fixed)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if !bytes.Equal(formatted, fixed) {
		t.Errorf("fixed file is not gofmt-clean:\n%s", fixed)
	}

	if code, out, errb := runIn(t, dir, "."); code != 0 {
		t.Errorf("tree still has findings after -fix: exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
}

// TestBudgetExceededExit2 pins the -budget contract: a ceiling no analyzer
// can meet trips exit 2 and names at least one offender on stderr.
func TestBudgetExceededExit2(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	code, _, errb := runIn(t, filepath.Join("..", "..", "internal", "graph"), "-budget=1ns", ".")
	if code != 2 {
		t.Fatalf("run -budget=1ns = %d, want 2\nstderr: %s", code, errb)
	}
	if !strings.Contains(errb, "over the 1ns budget") {
		t.Errorf("stderr does not name the over-budget analyzer: %s", errb)
	}
}

// TestBudgetGenerousExit0 is the other half: a realistic ceiling passes.
func TestBudgetGenerousExit0(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	code, out, errb := runIn(t, filepath.Join("..", "..", "internal", "graph"), "-budget=10m", ".")
	if code != 0 {
		t.Fatalf("run -budget=10m = %d, want 0\nstdout: %s\nstderr: %s", code, out, errb)
	}
}

// TestErrIdentityFixRoundTrip pins the erridentity autofix end to end: both
// sentinel comparisons are rewritten to errors.Is, the "errors" import is
// inserted exactly once, and the rewritten file is gofmt-clean and lints
// clean on a second pass.
func TestErrIdentityFixRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	dir := t.TempDir()
	src := filepath.Join("testdata", "src", "errfixpkg")
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	code, out, errb := runIn(t, dir, "-fix", ".")
	if code != 0 {
		t.Fatalf("run -fix = %d, want 0 (every finding fixable)\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(errb, "applied 2 fix(es)") {
		t.Errorf("stderr does not report both applied fixes: %s", errb)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "err.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"errors.Is(err, io.EOF)", "!errors.Is(err, io.ErrUnexpectedEOF)"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fix did not produce %q:\n%s", want, fixed)
		}
	}
	if n := strings.Count(string(fixed), `"errors"`); n != 1 {
		t.Errorf("expected the errors import inserted exactly once, found %d:\n%s", n, fixed)
	}
	formatted, err := format.Source(fixed)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if !bytes.Equal(formatted, fixed) {
		t.Errorf("fixed file is not gofmt-clean:\n%s", fixed)
	}

	if code, out, errb := runIn(t, dir, "."); code != 0 {
		t.Errorf("tree still has findings after -fix: exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
}

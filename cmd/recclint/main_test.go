package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"determinism", "floateq", "lockguard", "syncerr"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %q:\n%s", name, out.String())
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("run(-nonsense) = %d, want 2", code)
	}
}

// TestCleanPackage runs the real loader and suite over one small clean
// package; the full-module sweep lives in internal/analysis's meta-test.
func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"./../../internal/graph"}, &out, &errb); code != 0 {
		t.Fatalf("run over internal/graph = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced findings:\n%s", out.String())
	}
}

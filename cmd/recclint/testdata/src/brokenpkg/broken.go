// Package brokenpkg does not type-check: cmd/recclint must report a loader
// error (exit 2), never pretend the package was analyzed.
package brokenpkg

func Broken() int {
	return undefinedIdentifier
}

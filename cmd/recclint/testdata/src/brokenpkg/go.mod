module brokenpkg

go 1.22

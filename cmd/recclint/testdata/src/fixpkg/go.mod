module fixpkg

go 1.22

// Package fixpkg holds findings whose suggested fixes recclint -fix can
// apply mechanically: the test copies this module to a temp dir, runs -fix,
// and asserts the rewritten tree is gofmt-clean and lints clean.
package fixpkg

import "os"

// Leak never closes f on any path; the autofix inserts a deferred Close
// right after the error check.
func Leak(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}

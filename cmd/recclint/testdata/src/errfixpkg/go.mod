module errfixpkg

go 1.22

// Package errfixpkg is the erridentity autofix fixture: both comparisons
// below are the pre-errors.Is idiom, and the file does not import the errors
// package yet — so -fix must rewrite the comparisons AND insert the import, and the
// result must be gofmt-clean.
package errfixpkg

import (
	"io"
)

// Drain reads r to exhaustion, treating EOF as success.
func Drain(r io.Reader) error {
	buf := make([]byte, 16)
	for {
		_, err := r.Read(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Complete reports whether err is anything but a truncated read.
func Complete(err error) bool {
	return err != io.ErrUnexpectedEOF
}

// Package badpkg is a known-bad fixture module for cmd/recclint's exit-code
// and output-format tests: it compiles cleanly but carries deliberate
// findings from several analyzers. Kept in its own module so the repo's own
// lint sweep never sees it.
package badpkg

import (
	"context"
	"os"
)

// Discarded carries a mustclose finding: the *os.File result is dropped.
func Discarded(path string) {
	os.Open(path)
}

// Background carries a ctxflow finding: a fresh root context minted below
// the server layer with no ctxroot justification.
func Background() context.Context {
	return context.Background()
}

module badpkg

go 1.22

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"resistecc"
	"resistecc/internal/trace"
)

// cmdReplay re-executes a recorded trace (reccd -trace-out) and verifies
// every response against the recorded generation and digest. The target is
// either a live server (-target) or a fresh index built locally from the same
// edge list and build flags the recording server used (-in); in both cases a
// bit-exact run exits 0 and any divergence is an error.
func cmdReplay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace file to replay (required)")
	target := fs.String("target", "", "replay over HTTP against this base URL (e.g. http://localhost:8080)")
	in := fs.String("in", "", "replay locally against a fresh index built from this edge list")
	eps := fs.Float64("eps", 0.2, "approximation parameter (local replay; match the recording server)")
	dim := fs.Int("dim", 128, "sketch dimension override (local replay)")
	hullCap := fs.Int("hullcap", 64, "max hull vertices (local replay)")
	seed := fs.Int64("seed", 1, "sketch seed (local replay)")
	drift := fs.Float64("drift-threshold", 0, "rebuild drift threshold (local replay; 0 = library default)")
	timed := fs.Bool("timed", false, "honor the recorded arrival deltas instead of replaying as fast as possible")
	maxMismatches := fs.Int("max-mismatches", 10, "stop after this many divergences (0 = replay everything)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	if (*target == "") == (*in == "") {
		return fmt.Errorf("need exactly one of -target or -in")
	}

	recs, info, err := trace.ReadFile(*tracePath)
	if err != nil {
		return err
	}
	if info.Records == 0 {
		return fmt.Errorf("%s holds no valid trace records", *tracePath)
	}
	if info.TornBytes > 0 {
		fmt.Fprintf(os.Stderr, "recc: %s has a %d-byte torn tail; replaying the %d-record valid prefix\n",
			*tracePath, info.TornBytes, info.Records)
	}

	var ex trace.Executor
	if *target != "" {
		ex = &trace.HTTPExecutor{Base: *target}
	} else {
		ex, err = localExecutor(ctx, *in, *eps, *dim, *seed, *hullCap, *drift)
		if err != nil {
			return err
		}
	}

	rep, err := trace.Replay(ctx, recs, ex, trace.ReplayOptions{Timed: *timed, MaxMismatches: *maxMismatches})
	if err != nil {
		return err
	}
	printReplayReport(rep)
	if !rep.OK() {
		return fmt.Errorf("replay diverged: %d mismatches, %d failures", len(rep.Mismatches), rep.Failures)
	}
	return nil
}

// localExecutor builds the replay target the way reccd builds its serving
// index: load the edge list, keep the label mapping, restrict to the LCC, and
// translate the trace's external ids through the composed mapping.
func localExecutor(ctx context.Context, in string, eps float64, dim int, seed int64, hullCap int, drift float64) (trace.Executor, error) {
	g, labels, err := resistecc.LoadEdgeList(in)
	if err != nil {
		return nil, err
	}
	lcc, mapping := g.LargestComponent()
	if lcc.N() < g.N() {
		fmt.Fprintf(os.Stderr, "recc: using LCC with %d of %d nodes\n", lcc.N(), g.N())
	}
	toExternal := make([]int64, lcc.N())
	for v := range toExternal {
		orig := v
		if mapping != nil {
			orig = mapping[v]
		}
		ext := int64(orig)
		if labels != nil {
			ext = labels[orig]
		}
		toExternal[v] = ext
	}
	opts := []resistecc.Option{
		resistecc.WithEpsilon(eps), resistecc.WithDim(dim),
		resistecc.WithSeed(seed), resistecc.WithMaxHullVertices(hullCap),
	}
	if drift > 0 {
		opts = append(opts, resistecc.WithDriftThreshold(drift))
	}
	d, err := resistecc.NewDynamicIndex(ctx, lcc, opts...)
	if err != nil {
		return nil, err
	}
	return resistecc.TraceExecutor(d, toExternal), nil
}

func printReplayReport(rep *trace.Report) {
	fmt.Printf("replayed %d ops in %s\n", rep.Ops, rep.Duration.Round(time.Millisecond))
	printByOp(rep.ByOp[:])
	fmt.Printf("  verified    %d digests (%d records carried none)\n", rep.Checked, rep.Skipped)
	if rep.Rejected > 0 {
		fmt.Printf("  rejected    %d unverified ops (legitimate conflicts under generated load)\n", rep.Rejected)
	}
	if rep.Failures > 0 {
		fmt.Printf("  FAILED      %d verified ops errored; first: %s\n", rep.Failures, rep.FirstFailure)
	}
	for _, m := range rep.Mismatches {
		fmt.Printf("  DIVERGED    %s\n", m)
	}
	if rep.OK() {
		fmt.Println("  result      bit-exact")
	}
}

// cmdLoadgen synthesizes a deterministic open-loop workload and either writes
// it as a trace file (-out, replayable and inspectable like a recorded one),
// drives it against a live deployment (-target), or both. A load run that
// produced transport errors or 5xx answers exits non-zero — "zero 5xx at the
// stated rate" is the capacity claim this tool checks.
func cmdLoadgen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	nodes := fs.Int("nodes", 0, "external id space [0,nodes) the workload draws from (required unless -trace)")
	ops := fs.Int("ops", 10000, "number of operations to generate")
	seed := fs.Int64("seed", 1, "workload seed (same spec + seed = same trace, byte for byte)")
	rate := fs.Float64("rate", 0, "target arrival rate in ops/sec (0 = zero-delay trace)")
	zipfS := fs.Float64("zipf-s", 0, "zipf skew s > 1 (0 = default 1.2)")
	zipfV := fs.Float64("zipf-v", 0, "zipf offset v >= 1 (0 = default 8)")
	batch := fs.Int("batch", 1, "max batch-query size (1 = single-node queries only)")
	mutate := fs.Float64("mutate", 0, "fraction of ops that mutate the graph")
	remove := fs.Float64("remove", 0.25, "fraction of mutations that remove a previously added edge")
	rebuildEvery := fs.Int("rebuild-every", 0, "insert an explicit rebuild every N ops (0 = never)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "insert a checkpoint every N ops (0 = never)")
	tracePath := fs.String("trace", "", "drive an existing trace file instead of generating")
	out := fs.String("out", "", "write the generated trace to this file")
	target := fs.String("target", "", "drive the workload against this base URL")
	concurrency := fs.Int("concurrency", 64, "max in-flight requests when driving -target")
	asFast := fs.Bool("as-fast", false, "ignore arrival deltas; dispatch as fast as concurrency allows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" && *target == "" {
		return fmt.Errorf("need -out and/or -target (a workload must go somewhere)")
	}

	var recs []trace.Record
	if *tracePath != "" {
		var info *trace.Info
		var err error
		recs, info, err = trace.ReadFile(*tracePath)
		if err != nil {
			return err
		}
		if info.Records == 0 {
			return fmt.Errorf("%s holds no valid trace records", *tracePath)
		}
	} else {
		if *nodes == 0 {
			return fmt.Errorf("-nodes is required when generating (or pass -trace)")
		}
		w := trace.Workload{
			Nodes: *nodes, Ops: *ops, Seed: *seed,
			ZipfS: *zipfS, ZipfV: *zipfV,
			MaxBatch: *batch, MutationRate: *mutate, RemoveFraction: *remove,
			RebuildEvery: *rebuildEvery, CheckpointEvery: *checkpointEvery,
			Rate: *rate,
		}
		var err error
		recs, err = w.Generate()
		if err != nil {
			return err
		}
	}

	if *out != "" {
		if err := trace.WriteFile(*out, recs); err != nil {
			return err
		}
		fi, err := os.Stat(*out)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "recc: wrote %s: %d records, %d bytes\n", *out, len(recs), fi.Size())
	}
	if *target == "" {
		return nil
	}

	rep, err := trace.RunLoad(ctx, recs, *target, trace.LoadOptions{Concurrency: *concurrency, AsFast: *asFast})
	if err != nil {
		return err
	}
	fmt.Printf("drove %d ops in %s (%.1f ops/sec achieved)\n",
		rep.Ops, rep.Duration.Round(time.Millisecond), rep.AchievedRate)
	printByOp(rep.ByOp[:])
	fmt.Printf("  latency     p50 %s  p90 %s  p99 %s\n",
		rep.P50.Round(time.Microsecond), rep.P90.Round(time.Microsecond), rep.P99.Round(time.Microsecond))
	fmt.Printf("  rejected    %d (non-2xx below 500)\n", rep.Rejected)
	fmt.Printf("  errors      %d transport, %d server (5xx)\n", rep.Errors, rep.ServerErrors)
	if rep.ServerErrors > 0 || rep.Errors > 0 {
		return fmt.Errorf("load run saw %d transport errors and %d 5xx answers", rep.Errors, rep.ServerErrors)
	}
	return nil
}

// printByOp prints non-zero per-operation counts (byOp is indexed by Op),
// one aligned row each.
func printByOp(byOp []int) {
	for op := trace.OpQuery; int(op) < len(byOp); op++ {
		if n := byOp[op]; n > 0 {
			fmt.Printf("  %-11s %d\n", op, n)
		}
	}
}

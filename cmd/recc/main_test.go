package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"resistecc"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := resistecc.BarabasiAlbert(60, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("missing subcommand should fail")
	}
	if err := run(context.Background(), []string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand should fail")
	}
	if err := run(context.Background(), []string{"help"}); err != nil {
		t.Fatal("help should succeed")
	}
	if err := run(context.Background(), []string{"stats"}); err == nil {
		t.Fatal("stats without -in should fail")
	}
	if err := run(context.Background(), []string{"query", "-in", "/nonexistent"}); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestGenStatsRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gen.txt")
	if err := run(context.Background(), []string{"gen", "-type", "ba", "-n", "80", "-deg", "2", "-seed", "5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"stats", "-in", out, "-fast"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"stats", "-in", out}); err != nil {
		t.Fatal(err)
	}
	// Every generator type parses.
	for _, typ := range []string{"plc", "ws", "er", "path", "cycle", "star", "complete"} {
		out := filepath.Join(t.TempDir(), typ+".txt")
		args := []string{"gen", "-type", typ, "-n", "40", "-deg", "4", "-out", out}
		if err := run(context.Background(), args); err != nil {
			t.Fatalf("gen %s: %v", typ, err)
		}
	}
	if err := run(context.Background(), []string{"gen", "-type", "nope"}); err == nil {
		t.Fatal("unknown generator should fail")
	}
}

func TestQueryCommands(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(context.Background(), []string{"query", "-in", path, "-nodes", "0,5", "-exact"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"query", "-in", path, "-nodes", "0,5", "-eps", "0.3", "-dim", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"query", "-in", path, "-nodes", "0,999"}); err == nil {
		t.Fatal("out-of-range node should fail")
	}
	if err := run(context.Background(), []string{"query", "-in", path, "-nodes", "zero"}); err == nil {
		t.Fatal("non-numeric node should fail")
	}
	if err := run(context.Background(), []string{"query", "-in", path}); err == nil {
		t.Fatal("missing -nodes should fail")
	}
}

func TestDistCommand(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(context.Background(), []string{"dist", "-in", path, "-exact", "-burr", "-bins", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"dist", "-in", path, "-eps", "0.3", "-dim", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeCommand(t *testing.T) {
	path := writeTestGraph(t)
	for _, algo := range []string{"greedy", "far", "cen", "ch", "minrecc", "de", "pk", "path", "rand"} {
		args := []string{"optimize", "-in", path, "-source", "3", "-k", "2", "-algo", algo, "-dim", "48"}
		if err := run(context.Background(), args); err != nil {
			t.Fatalf("optimize %s: %v", algo, err)
		}
	}
	if err := run(context.Background(), []string{"optimize", "-in", path, "-source", "3", "-k", "1", "-algo", "greedy", "-problem", "remd", "-traj"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"optimize", "-in", path, "-algo", "nope"}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if err := run(context.Background(), []string{"optimize", "-in", path, "-source", "-5"}); err == nil {
		t.Fatal("bad source should fail")
	}
}

func TestCentralityCommand(t *testing.T) {
	path := writeTestGraph(t)
	for _, m := range []string{"closeness", "harmonic", "currentflow", "cf-approx"} {
		if err := run(context.Background(), []string{"centrality", "-in", path, "-measure", m, "-top", "3", "-dim", "48"}); err != nil {
			t.Fatalf("centrality %s: %v", m, err)
		}
	}
	if err := run(context.Background(), []string{"centrality", "-in", path, "-measure", "nope"}); err == nil {
		t.Fatal("unknown measure should fail")
	}
}

func TestSpectralCommand(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(context.Background(), []string{"spectral", "-in", path, "-probes", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"spectral", "-in", path, "-exact"}); err != nil {
		t.Fatal(err)
	}
}

func TestHittingCommand(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(context.Background(), []string{"hitting", "-in", path, "-target", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"hitting", "-in", path, "-target", "0", "-sources", "1,2"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"hitting", "-in", path, "-target", "-4"}); err == nil {
		t.Fatal("bad target should fail")
	}
	if err := run(context.Background(), []string{"hitting", "-in", path, "-target", "0", "-sources", "x"}); err == nil {
		t.Fatal("bad sources should fail")
	}
}

func TestSnapshotAndInspectCommands(t *testing.T) {
	path := writeTestGraph(t)
	dir := filepath.Join(t.TempDir(), "store")
	file := filepath.Join(t.TempDir(), "index.snap")

	if err := run(context.Background(), []string{"snapshot", "-in", path}); err == nil {
		t.Fatal("snapshot without a destination should fail")
	}
	if err := run(context.Background(), []string{"snapshot", "-in", path, "-data-dir", dir, "-out", file}); err == nil {
		t.Fatal("snapshot with both destinations should fail")
	}
	if err := run(context.Background(), []string{"snapshot", "-in", path, "-data-dir", dir, "-dim", "48", "-eps", "0.3"}); err != nil {
		t.Fatal(err)
	}
	// Second run finds the store warm and refreshes it.
	if err := run(context.Background(), []string{"snapshot", "-in", path, "-data-dir", dir, "-dim", "48", "-eps", "0.3"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"snapshot", "-in", path, "-out", file, "-dim", "48", "-eps", "0.3"}); err != nil {
		t.Fatal(err)
	}

	if err := run(context.Background(), []string{"inspect", "-path", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"inspect", file}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"inspect"}); err == nil {
		t.Fatal("inspect without a path should fail")
	}
	if err := run(context.Background(), []string{"inspect", "-path", filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("inspect of a missing path should fail")
	}
	// A snapshot saved with -out loads back into a usable index.
	d, err := resistecc.LoadSnapshot(file)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Snapshot().N == 0 {
		t.Fatal("loaded snapshot is empty")
	}
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"resistecc/internal/trace"
)

// stampDigests executes a generated (unverified) trace against a fresh local
// index and writes the observed generations and digests back into the
// records, producing the same kind of verified trace a recording server
// emits. Records the target rejects (a generated add can collide with a base
// edge) are dropped and the sequence renumbered.
func stampDigests(t *testing.T, graphPath string, recs []trace.Record) []trace.Record {
	t.Helper()
	ex, err := localExecutor(context.Background(), graphPath, 0.3, 64, 5, 24, 100)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]trace.Record, 0, len(recs))
	for _, rec := range recs {
		res, err := ex.Do(context.Background(), rec)
		if err != nil {
			continue
		}
		rec.Seq = uint64(len(out) + 1)
		rec.Gen = res.Gen
		rec.Digest = res.Digest
		out = append(out, rec)
	}
	return out
}

func TestLoadgenReplayInspectCommands(t *testing.T) {
	graphPath := writeTestGraph(t)
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.trc")

	// loadgen -out writes a deterministic trace file.
	gen := []string{
		"loadgen", "-nodes", "60", "-ops", "60", "-seed", "7",
		"-batch", "3", "-mutate", "0.2", "-rebuild-every", "25", "-checkpoint-every", "30",
		"-out", raw,
	}
	if err := run(context.Background(), gen); err != nil {
		t.Fatal(err)
	}
	recs, info, err := trace.ReadFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 60 || info.TornBytes != 0 {
		t.Fatalf("generated trace: %+v", info)
	}
	// Same spec, same bytes.
	raw2 := filepath.Join(dir, "raw2.trc")
	gen2 := append(append([]string{}, gen[:len(gen)-1]...), raw2)
	if err := run(context.Background(), gen2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(raw)
	b2, _ := os.ReadFile(raw2)
	if string(b1) != string(b2) {
		t.Fatal("loadgen is not deterministic in its spec")
	}

	// An unverified trace replays locally without failures.
	if err := run(context.Background(), []string{
		"replay", "-trace", raw, "-in", graphPath,
		"-eps", "0.3", "-dim", "64", "-seed", "5", "-hullcap", "24", "-drift-threshold", "100",
	}); err != nil {
		t.Fatalf("unverified replay: %v", err)
	}

	// Stamp digests by executing once, then a fresh same-seed index must
	// reproduce every bit.
	verified := stampDigests(t, graphPath, recs)
	if len(verified) == 0 {
		t.Fatal("no records survived stamping")
	}
	vpath := filepath.Join(dir, "verified.trc")
	if err := trace.WriteFile(vpath, verified); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"replay", "-trace", vpath, "-in", graphPath,
		"-eps", "0.3", "-dim", "64", "-seed", "5", "-hullcap", "24", "-drift-threshold", "100",
	}); err != nil {
		t.Fatalf("verified replay should be bit-exact: %v", err)
	}

	// A flipped digest is a divergence the replay must report.
	tampered := append([]trace.Record{}, verified...)
	for i := range tampered {
		if tampered[i].Digest != 0 {
			tampered[i].Digest ^= 1
			break
		}
	}
	tpath := filepath.Join(dir, "tampered.trc")
	if err := trace.WriteFile(tpath, tampered); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"replay", "-trace", tpath, "-in", graphPath,
		"-eps", "0.3", "-dim", "64", "-seed", "5", "-hullcap", "24", "-drift-threshold", "100",
	}); err == nil {
		t.Fatal("tampered digest should fail the replay")
	}

	// inspect dispatches on the trace magic.
	if err := run(context.Background(), []string{"inspect", "-path", vpath}); err != nil {
		t.Fatal(err)
	}

	// Flag validation.
	if err := run(context.Background(), []string{"replay", "-in", graphPath}); err == nil {
		t.Fatal("replay without -trace should fail")
	}
	if err := run(context.Background(), []string{"replay", "-trace", raw}); err == nil {
		t.Fatal("replay without a target should fail")
	}
	if err := run(context.Background(), []string{"replay", "-trace", raw, "-in", graphPath, "-target", "http://x"}); err == nil {
		t.Fatal("replay with two targets should fail")
	}
	if err := run(context.Background(), []string{"loadgen", "-nodes", "60"}); err == nil {
		t.Fatal("loadgen without a destination should fail")
	}
	if err := run(context.Background(), []string{"loadgen", "-out", filepath.Join(dir, "x.trc")}); err == nil {
		t.Fatal("loadgen without -nodes should fail")
	}
}

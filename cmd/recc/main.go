// Command recc is the command-line front end of the resistecc library:
// generate synthetic networks, inspect structural statistics, query exact or
// approximate resistance eccentricities, compute distributions with Burr
// fits, and run the edge-addition optimizers.
//
// Usage:
//
//	recc gen      -type ba -n 1000 -deg 4 -seed 1 -out graph.txt
//	recc stats    -in graph.txt
//	recc query    -in graph.txt -nodes 0,5,9 [-exact] [-eps 0.2] [-dim 128]
//	recc dist     -in graph.txt [-exact] [-eps 0.2] [-burr] [-bins 30]
//	recc optimize -in graph.txt -source 0 -k 10 -algo minrecc [-eps 0.3]
//	recc snapshot -in graph.txt -data-dir ./idx   (or -out index.snap)
//	recc inspect  -path ./idx                     (or a .snap or trace file)
//	recc replay   -trace ops.trc -in graph.txt    (or -target http://host:8080)
//	recc loadgen  -nodes 1000 -ops 10000 -out ops.trc [-target http://host:8080]
//
// Graphs are whitespace edge lists (KONECT style); only the largest
// connected component is analyzed, mirroring the paper's preprocessing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"resistecc"
)

func main() {
	// The root context is minted once, here; ^C cancels the index build
	// instead of leaving it to run to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recc:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "query":
		return cmdQuery(ctx, args[1:])
	case "dist":
		return cmdDist(ctx, args[1:])
	case "optimize":
		return cmdOptimize(ctx, args[1:])
	case "centrality":
		return cmdCentrality(ctx, args[1:])
	case "spectral":
		return cmdSpectral(args[1:])
	case "hitting":
		return cmdHitting(args[1:])
	case "snapshot":
		return cmdSnapshot(ctx, args[1:])
	case "inspect":
		return cmdInspect(args[1:])
	case "replay":
		return cmdReplay(ctx, args[1:])
	case "loadgen":
		return cmdLoadgen(ctx, args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: recc <gen|stats|query|dist|optimize|centrality|spectral|hitting|snapshot|inspect|replay|loadgen> [flags]
  gen         generate a synthetic network and write an edge list
  stats       structural statistics of a network's LCC
  query       resistance eccentricity of given nodes
  dist        full resistance eccentricity distribution (+ optional Burr fit)
  optimize    minimize c(s) by adding k edges
  centrality  rank nodes by closeness / harmonic / current-flow centrality
  spectral    λ₂, λmax, Kirchhoff index, Kemeny constant
  hitting     expected random-walk hitting times to a target
  snapshot    build an index offline and persist it (warm reccd starts)
  inspect     examine a snapshot file, durable store directory, or trace file
  replay      re-execute a recorded trace with bit-exact verification
  loadgen     synthesize a deterministic workload trace and/or drive it
run 'recc <subcommand> -h' for flags`)
}

func loadLCC(path string) (*resistecc.Graph, error) {
	if path == "" {
		return nil, fmt.Errorf("-in is required")
	}
	g, _, err := resistecc.LoadEdgeList(path)
	if err != nil {
		return nil, err
	}
	lcc, _ := g.LargestComponent()
	if lcc.N() < g.N() {
		fmt.Fprintf(os.Stderr, "recc: using LCC with %d of %d nodes\n", lcc.N(), g.N())
	}
	return lcc, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	typ := fs.String("type", "ba", "generator: ba|plc|ws|er|path|cycle|star|complete|lollipop")
	n := fs.Int("n", 1000, "node count")
	deg := fs.Int("deg", 4, "attachment/lattice degree parameter")
	tri := fs.Float64("tri", 0.4, "triangle probability (plc)")
	beta := fs.Float64("beta", 0.1, "rewiring probability (ws)")
	p := fs.Float64("p", 0.01, "edge probability (er)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output edge-list path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		g   *resistecc.Graph
		err error
	)
	switch *typ {
	case "ba":
		g, err = resistecc.BarabasiAlbert(*n, *deg, *seed)
	case "plc":
		g, err = resistecc.PowerlawCluster(*n, *deg, *tri, *seed)
	case "ws":
		g, err = resistecc.WattsStrogatz(*n, *deg, *beta, *seed)
	case "er":
		g, err = resistecc.ErdosRenyi(*n, *p, *seed)
	case "path":
		g = resistecc.PathGraph(*n)
	case "cycle":
		g = resistecc.CycleGraph(*n)
	case "star":
		g = resistecc.StarGraph(*n)
	case "complete":
		g = resistecc.CompleteGraph(*n)
	case "lollipop":
		g = resistecc.LollipopGraph(*deg, *n)
	default:
		return fmt.Errorf("unknown generator %q", *typ)
	}
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := g.WriteEdgeList(f); err != nil {
			f.Close()
			return err
		}
		// Close is where delayed write-back errors surface; a deferred
		// unchecked Close could report success for a torn file.
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := g.WriteEdgeList(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recc: wrote %d nodes, %d edges\n", g.N(), g.M())
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	fast := fs.Bool("fast", false, "skip the clustering coefficient")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	var st resistecc.GraphStats
	if *fast {
		st = g.StatsFast()
	} else {
		st = g.Stats()
	}
	fmt.Printf("nodes          %d\n", st.N)
	fmt.Printf("edges          %d\n", st.M)
	fmt.Printf("avg degree     %.3f\n", st.AvgDegree)
	fmt.Printf("degree range   [%d, %d]\n", st.MinDegree, st.MaxDegree)
	fmt.Printf("powerlaw gamma %.3f\n", st.PowerLawGamma)
	if !*fast {
		fmt.Printf("clustering     %.4f\n", st.Clustering)
	}
	return nil
}

func parseNodes(s string, n int) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-nodes is required (comma-separated ids)")
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q: %v", p, err)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("node %d out of range (n=%d)", v, n)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	nodesArg := fs.String("nodes", "", "comma-separated node ids")
	exact := fs.Bool("exact", false, "use EXACTQUERY (O(n^3) preprocessing)")
	eps := fs.Float64("eps", 0.2, "approximation parameter for FASTQUERY")
	dim := fs.Int("dim", 0, "sketch dimension override (0 = theoretical)")
	hullCap := fs.Int("hullcap", 64, "max hull vertices (0 = certified hull)")
	seed := fs.Int64("seed", 1, "sketch seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	nodes, err := parseNodes(*nodesArg, g.N())
	if err != nil {
		return err
	}
	var vals []resistecc.Eccentricity
	if *exact {
		idx, err := resistecc.NewExactIndex(ctx, g)
		if err != nil {
			return err
		}
		vals, err = idx.Query(nodes)
		if err != nil {
			return err
		}
	} else {
		idx, err := resistecc.NewFastIndex(ctx, g,
			resistecc.WithEpsilon(*eps), resistecc.WithDim(*dim),
			resistecc.WithSeed(*seed), resistecc.WithMaxHullVertices(*hullCap))
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "recc: FASTQUERY d=%d l=%d\n", idx.SketchDim(), idx.BoundarySize())
		vals, err = idx.Query(nodes)
		if err != nil {
			return err
		}
	}
	for _, v := range vals {
		fmt.Printf("c(%d) = %.6f  (farthest node %d)\n", v.Node, v.Value, v.Farthest)
	}
	return nil
}

func cmdDist(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("dist", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	exact := fs.Bool("exact", false, "use EXACTQUERY")
	eps := fs.Float64("eps", 0.2, "approximation parameter")
	dim := fs.Int("dim", 0, "sketch dimension override")
	hullCap := fs.Int("hullcap", 64, "max hull vertices (0 = certified)")
	seed := fs.Int64("seed", 1, "sketch seed")
	burr := fs.Bool("burr", false, "fit a Burr XII distribution")
	bins := fs.Int("bins", 0, "print a histogram with this many bins")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	var dist []float64
	if *exact {
		idx, err := resistecc.NewExactIndex(ctx, g)
		if err != nil {
			return err
		}
		dist = idx.Distribution()
	} else {
		idx, err := resistecc.NewFastIndex(ctx, g,
			resistecc.WithEpsilon(*eps), resistecc.WithDim(*dim),
			resistecc.WithSeed(*seed), resistecc.WithMaxHullVertices(*hullCap))
		if err != nil {
			return err
		}
		dist = idx.Distribution()
	}
	sum := resistecc.Summarize(dist)
	fmt.Printf("resistance radius   phi = %.6f\n", sum.Radius)
	fmt.Printf("resistance diameter R   = %.6f\n", sum.Diameter)
	fmt.Printf("mean                    = %.6f\n", sum.Mean)
	fmt.Printf("skewness                = %.4f\n", sum.Skewness)
	fmt.Printf("resistance center       = %v\n", sum.Center)
	if *burr {
		fit, err := resistecc.FitBurr(dist)
		if err != nil {
			return err
		}
		fmt.Printf("Burr fit: c=%.4f k=%.4f lambda=%.4f  loglik=%.1f KS=%.4f\n",
			fit.C, fit.K, fit.Lambda, fit.LogLik, fit.KS)
	}
	if *bins > 0 {
		lo, hi := sum.Radius, sum.Diameter
		if hi <= lo { // degenerate distribution: avoid a zero bin width
			hi = lo + 1
		}
		counts := make([]int, *bins)
		width := (hi - lo) / float64(*bins)
		for _, c := range dist {
			b := int((c - lo) / width)
			if b >= *bins {
				b = *bins - 1
			}
			if b < 0 {
				b = 0
			}
			counts[b]++
		}
		maxC := 1
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		for i, c := range counts {
			fmt.Printf("%9.4f |%s %d\n", lo+(float64(i)+0.5)*width, strings.Repeat("#", c*50/maxC), c)
		}
	}
	return nil
}

func cmdOptimize(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	source := fs.Int("source", 0, "source node s")
	k := fs.Int("k", 10, "edge budget")
	algo := fs.String("algo", "minrecc", "greedy|far|cen|ch|minrecc|de|pk|path|rand")
	problem := fs.String("problem", "", "remd|rem (baselines only; heuristics imply theirs)")
	eps := fs.Float64("eps", 0.3, "approximation parameter")
	dim := fs.Int("dim", 128, "sketch dimension override")
	hullCap := fs.Int("hullcap", 32, "max hull vertices")
	seed := fs.Int64("seed", 1, "seed")
	traj := fs.Bool("traj", false, "print the exact c(s) trajectory (O(n^3))")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	if *source < 0 || *source >= g.N() {
		return fmt.Errorf("source %d out of range (n=%d)", *source, g.N())
	}
	opt := resistecc.OptimizeOptions{
		Sketch:        resistecc.SketchOptions{Epsilon: *eps, Dim: *dim, Seed: *seed},
		Hull:          resistecc.HullOptions{MaxVertices: *hullCap},
		MaxCandidates: 128,
	}
	prob := resistecc.REM
	if strings.EqualFold(*problem, "remd") {
		prob = resistecc.REMD
	}
	var plan *resistecc.Plan
	switch strings.ToLower(*algo) {
	case "greedy":
		plan, err = resistecc.GreedyExact(g, prob, *source, *k)
	case "far":
		plan, err = resistecc.FarMinRecc(ctx, g, *source, *k, opt)
	case "cen":
		plan, err = resistecc.CenMinRecc(ctx, g, *source, *k, opt)
	case "ch":
		plan, err = resistecc.ChMinRecc(ctx, g, *source, *k, opt)
	case "minrecc":
		plan, err = resistecc.MinRecc(ctx, g, *source, *k, opt)
	case "de":
		plan, err = resistecc.RunBaseline(g, resistecc.BaselineDegree, prob, *source, *k, *seed)
	case "pk":
		plan, err = resistecc.RunBaseline(g, resistecc.BaselinePageRank, prob, *source, *k, *seed)
	case "path":
		plan, err = resistecc.RunBaseline(g, resistecc.BaselinePath, prob, *source, *k, *seed)
	case "rand":
		plan, err = resistecc.RunBaseline(g, resistecc.BaselineRandom, prob, *source, *k, *seed)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	fmt.Printf("algorithm %s (%s), source %d, %d edges:\n", plan.Algorithm, plan.Problem, plan.Source, len(plan.Edges))
	for i, e := range plan.Edges {
		fmt.Printf("  %2d: (%d, %d)\n", i+1, e[0], e[1])
	}
	if *traj {
		tr, err := plan.ExactTrajectory(g)
		if err != nil {
			return err
		}
		fmt.Println("exact c(s) trajectory:")
		for i, c := range tr {
			fmt.Printf("  k=%2d  c(s)=%.6f\n", i, c)
		}
	}
	return nil
}

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"resistecc"
	"resistecc/internal/persist"
	"resistecc/internal/trace"
)

// cmdSnapshot builds a FASTQUERY index offline and persists it, so a reccd
// started over the same input and flags comes up warm without solver work.
// With -data-dir the snapshot lands in a durable store directory (the form
// reccd -data-dir consumes); with -out it is one self-contained file for
// resistecc.LoadSnapshot. Flag defaults match reccd's.
func cmdSnapshot(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	dataDir := fs.String("data-dir", "", "durable store directory to checkpoint into")
	out := fs.String("out", "", "write one snapshot file instead of a store directory")
	eps := fs.Float64("eps", 0.2, "approximation parameter")
	dim := fs.Int("dim", 128, "sketch dimension override")
	hullCap := fs.Int("hullcap", 64, "max hull vertices")
	seed := fs.Int64("seed", 1, "sketch seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*dataDir == "") == (*out == "") {
		return fmt.Errorf("need exactly one of -data-dir or -out")
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	opts := []resistecc.Option{
		resistecc.WithEpsilon(*eps), resistecc.WithDim(*dim),
		resistecc.WithSeed(*seed), resistecc.WithMaxHullVertices(*hullCap),
	}
	if *dataDir != "" {
		d, info, err := resistecc.OpenDynamicIndex(ctx, *dataDir, g, opts...)
		if err != nil {
			return err
		}
		defer d.Close()
		if info.Warm {
			// The store already held this exact state; refresh the snapshot
			// anyway so its WAL is absorbed and the age gauge resets.
			if err := d.Checkpoint(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "recc: store %s was already warm; snapshot refreshed\n", *dataDir)
		} else {
			fmt.Fprintf(os.Stderr, "recc: cold build (%s) checkpointed into %s\n", info.Reason, *dataDir)
		}
		ps := d.PersistStats()
		fmt.Printf("snapshot seq %d, generation %d, %d nodes, %d edges\n",
			ps.SnapshotSeq, ps.SnapshotGeneration, g.N(), g.M())
		return nil
	}
	d, err := resistecc.NewDynamicIndex(ctx, g, opts...)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.SaveSnapshot(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes, %d nodes, %d edges\n", *out, fi.Size(), g.N(), g.M())
	return nil
}

// cmdInspect prints what recovery would see in a snapshot file or a durable
// store directory: per-section sizes and checksums, build parameters, and the
// WAL's valid prefix — without loading the index.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	path := fs.String("path", "", "snapshot file or durable store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := *path
	if p == "" {
		if fs.NArg() == 1 {
			p = fs.Arg(0)
		} else {
			return fmt.Errorf("-path is required (snapshot file or store directory)")
		}
	}
	fi, err := os.Stat(p)
	if err != nil {
		return err
	}
	if !fi.IsDir() {
		if isTraceFile(p) {
			return inspectTrace(p, fi.Size())
		}
		rep, err := persist.InspectSnapshot(p)
		if err != nil {
			return err
		}
		printReport(rep)
		return nil
	}
	reps, wal, err := persist.InspectDir(p)
	if err != nil {
		return err
	}
	if len(reps) == 0 {
		fmt.Println("no snapshots")
	}
	for i, rep := range reps {
		if i > 0 {
			fmt.Println()
		}
		printReport(rep)
	}
	if wal != nil {
		fmt.Printf("\nwal %s\n", wal.Path)
		fmt.Printf("  size        %d bytes\n", wal.Size)
		fmt.Printf("  records     %d", wal.Records)
		if wal.Records > 0 {
			fmt.Printf(" (seq %d..%d)", wal.FirstSeq, wal.LastSeq)
		}
		fmt.Println()
		if wal.TornBytes > 0 {
			fmt.Printf("  torn tail   %d bytes (recovery discards them)\n", wal.TornBytes)
		}
	}
	return nil
}

// isTraceFile sniffs the first 8 bytes for the trace magic so inspect can
// dispatch between snapshot and trace files without an extension convention.
func isTraceFile(p string) bool {
	f, err := os.Open(p)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return false
	}
	return string(hdr[:]) == trace.Magic
}

// inspectTrace prints what a replayer would see in a trace file: the valid
// record prefix with per-op counts, the wall-clock span the arrival deltas
// cover, and how much of the file is a torn tail a reader discards.
func inspectTrace(p string, size int64) error {
	info, err := trace.InspectFile(p)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s\n", p)
	fmt.Printf("  size        %d bytes, format v%d\n", size, info.Version)
	fmt.Printf("  records     %d", info.Records)
	if info.Records > 0 {
		fmt.Printf(" (seq %d..%d)", info.FirstSeq, info.LastSeq)
	}
	fmt.Println()
	for op := trace.OpQuery; int(op) < len(info.ByOp); op++ {
		if n := info.ByOp[op]; n > 0 {
			fmt.Printf("  %-11s %d\n", op, n)
		}
	}
	fmt.Printf("  span        %s of recorded arrivals\n", time.Duration(info.SpanNanos).Round(time.Millisecond))
	if info.TornBytes > 0 {
		fmt.Printf("  torn tail   %d bytes after the %d-byte valid prefix (replay discards them)\n",
			info.TornBytes, info.ValidBytes)
	}
	return nil
}

func printReport(rep *persist.Report) {
	fmt.Printf("snapshot %s\n", rep.Path)
	fmt.Printf("  size        %d bytes, format v%d\n", rep.Size, rep.Version)
	if rep.Valid {
		fmt.Printf("  status      valid\n")
	} else {
		fmt.Printf("  status      INVALID: %s\n", rep.Err)
	}
	if !rep.SavedAt.IsZero() {
		fmt.Printf("  saved       %s\n", rep.SavedAt.Format("2006-01-02 15:04:05 MST"))
	}
	fmt.Printf("  state       seq=%d gen=%d n=%d m=%d fingerprint=%016x\n",
		rep.Seq, rep.Gen, rep.N, rep.M, rep.BaseFP)
	fmt.Printf("  build       eps=%g dim=%d seed=%d boundary=%d ecc-cache=%v\n",
		rep.Params.Epsilon, rep.Dim, rep.Params.Seed, rep.BoundaryL, rep.HasEcc)
	for _, sec := range rep.Sections {
		crc := "ok"
		if !sec.CRCOK {
			crc = "CORRUPT"
		}
		fmt.Printf("  section %-9s %9d bytes  crc %s", sec.Name, sec.Bytes, crc)
		if sec.Details != "" {
			fmt.Printf("  (%s)", sec.Details)
		}
		fmt.Println()
	}
}

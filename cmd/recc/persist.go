package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"resistecc"
	"resistecc/internal/persist"
	"resistecc/internal/trace"
)

// cmdSnapshot builds a FASTQUERY index offline and persists it, so a reccd
// started over the same input and flags comes up warm without solver work.
// With -data-dir the snapshot lands in a durable store directory (the form
// reccd -data-dir consumes); with -out it is one self-contained file for
// resistecc.LoadSnapshot. Flag defaults match reccd's.
func cmdSnapshot(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	dataDir := fs.String("data-dir", "", "durable store directory to checkpoint into")
	out := fs.String("out", "", "write one snapshot file instead of a store directory")
	eps := fs.Float64("eps", 0.2, "approximation parameter")
	dim := fs.Int("dim", 128, "sketch dimension override")
	hullCap := fs.Int("hullcap", 64, "max hull vertices")
	seed := fs.Int64("seed", 1, "sketch seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*dataDir == "") == (*out == "") {
		return fmt.Errorf("need exactly one of -data-dir or -out")
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	opts := []resistecc.Option{
		resistecc.WithEpsilon(*eps), resistecc.WithDim(*dim),
		resistecc.WithSeed(*seed), resistecc.WithMaxHullVertices(*hullCap),
	}
	if *dataDir != "" {
		d, info, err := resistecc.OpenDynamicIndex(ctx, *dataDir, g, opts...)
		if err != nil {
			return err
		}
		defer d.Close()
		if info.Warm {
			// The store already held this exact state; refresh the snapshot
			// anyway so its WAL is absorbed and the age gauge resets.
			if err := d.Checkpoint(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "recc: store %s was already warm; snapshot refreshed\n", *dataDir)
		} else {
			fmt.Fprintf(os.Stderr, "recc: cold build (%s) checkpointed into %s\n", info.Reason, *dataDir)
		}
		ps := d.PersistStats()
		fmt.Printf("snapshot seq %d, generation %d, %d nodes, %d edges\n",
			ps.SnapshotSeq, ps.SnapshotGeneration, g.N(), g.M())
		return nil
	}
	d, err := resistecc.NewDynamicIndex(ctx, g, opts...)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.SaveSnapshot(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes, %d nodes, %d edges\n", *out, fi.Size(), g.N(), g.M())
	return nil
}

// cmdInspect prints what recovery would see in a snapshot, WAL, tail-frame,
// or trace file, or a durable store directory: per-section sizes and
// checksums, build parameters, and each format's valid prefix — without
// loading the index.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	path := fs.String("path", "", "snapshot, WAL, tail-frame, or trace file, or a store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := *path
	if p == "" {
		if fs.NArg() == 1 {
			p = fs.Arg(0)
		} else {
			return fmt.Errorf("-path is required (snapshot file or store directory)")
		}
	}
	fi, err := os.Stat(p)
	if err != nil {
		return err
	}
	if !fi.IsDir() {
		switch sniffMagic(p) {
		case trace.Magic:
			return inspectTrace(p, fi.Size())
		case persist.WALMagic:
			return inspectWAL(p)
		case persist.TailMagic:
			return inspectTailFrame(p)
		}
		// Everything else is presented as a snapshot; InspectSnapshot
		// reports an unrecognized magic rather than failing.
		rep, err := persist.InspectSnapshot(p)
		if err != nil {
			return err
		}
		printReport(rep)
		return nil
	}
	reps, wal, err := persist.InspectDir(p)
	if err != nil {
		return err
	}
	if len(reps) == 0 {
		fmt.Println("no snapshots")
	}
	for i, rep := range reps {
		if i > 0 {
			fmt.Println()
		}
		printReport(rep)
	}
	if wal != nil {
		fmt.Println()
		printWALInfo(wal)
	}
	return nil
}

// sniffMagic reads the 8-byte format tag so inspect can dispatch between the
// four on-disk formats without an extension convention.
func sniffMagic(p string) string {
	f, err := os.Open(p)
	if err != nil {
		return ""
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return ""
	}
	return string(hdr[:])
}

// inspectWAL prints what recovery would see in a standalone WAL file: the
// valid record prefix and any torn tail recovery would truncate.
func inspectWAL(p string) error {
	wi, err := persist.InspectWAL(p)
	if err != nil {
		return err
	}
	printWALInfo(wi)
	return nil
}

func printWALInfo(wal *persist.WALInfo) {
	fmt.Printf("wal %s\n", wal.Path)
	if wal.Version != 0 {
		fmt.Printf("  size        %d bytes, format v%d\n", wal.Size, wal.Version)
	} else {
		fmt.Printf("  size        %d bytes\n", wal.Size)
	}
	fmt.Printf("  records     %d", wal.Records)
	if wal.Records > 0 {
		fmt.Printf(" (seq %d..%d)", wal.FirstSeq, wal.LastSeq)
	}
	fmt.Println()
	if wal.TornBytes > 0 {
		fmt.Printf("  torn tail   %d bytes (recovery discards them)\n", wal.TornBytes)
	}
}

// inspectTailFrame prints what a replica would see in a captured tail-fetch
// frame: the writer's header fields, how many records verify, and why the
// frame would be rejected if it would be. Frames apply all-or-nothing, so
// unlike a WAL a bad byte anywhere invalidates the whole frame.
func inspectTailFrame(p string) error {
	ti, err := persist.InspectTail(p)
	if err != nil {
		return err
	}
	fmt.Printf("tail frame %s\n", ti.Path)
	fmt.Printf("  size        %d bytes, format v%d\n", ti.Size, ti.Version)
	if ti.Valid {
		fmt.Printf("  status      valid\n")
	} else {
		fmt.Printf("  status      INVALID: %s\n", ti.Err)
	}
	if ti.HeaderOK {
		fmt.Printf("  writer      lastSeq=%d gen=%d snapSeq=%d snapGen=%d\n",
			ti.LastSeq, ti.WriterGen, ti.SnapSeq, ti.SnapGen)
	}
	fmt.Printf("  records     %d declared, %d verified", ti.Declared, ti.Records)
	if ti.Records > 0 {
		fmt.Printf(" (seq %d..%d)", ti.FirstRec, ti.LastRec)
	}
	fmt.Println()
	if ti.TornBytes > 0 {
		fmt.Printf("  trailing    %d bytes past the verified records (a replica rejects the frame)\n", ti.TornBytes)
	}
	return nil
}

// inspectTrace prints what a replayer would see in a trace file: the valid
// record prefix with per-op counts, the wall-clock span the arrival deltas
// cover, and how much of the file is a torn tail a reader discards.
func inspectTrace(p string, size int64) error {
	info, err := trace.InspectFile(p)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s\n", p)
	fmt.Printf("  size        %d bytes, format v%d\n", size, info.Version)
	fmt.Printf("  records     %d", info.Records)
	if info.Records > 0 {
		fmt.Printf(" (seq %d..%d)", info.FirstSeq, info.LastSeq)
	}
	fmt.Println()
	for op := trace.OpQuery; int(op) < len(info.ByOp); op++ {
		if n := info.ByOp[op]; n > 0 {
			fmt.Printf("  %-11s %d\n", op, n)
		}
	}
	fmt.Printf("  span        %s of recorded arrivals\n", time.Duration(info.SpanNanos).Round(time.Millisecond))
	if info.TornBytes > 0 {
		fmt.Printf("  torn tail   %d bytes after the %d-byte valid prefix (replay discards them)\n",
			info.TornBytes, info.ValidBytes)
	}
	return nil
}

func printReport(rep *persist.Report) {
	fmt.Printf("snapshot %s\n", rep.Path)
	fmt.Printf("  size        %d bytes, format v%d\n", rep.Size, rep.Version)
	if rep.Valid {
		fmt.Printf("  status      valid\n")
	} else {
		fmt.Printf("  status      INVALID: %s\n", rep.Err)
	}
	if !rep.SavedAt.IsZero() {
		fmt.Printf("  saved       %s\n", rep.SavedAt.Format("2006-01-02 15:04:05 MST"))
	}
	fmt.Printf("  state       seq=%d gen=%d n=%d m=%d fingerprint=%016x\n",
		rep.Seq, rep.Gen, rep.N, rep.M, rep.BaseFP)
	fmt.Printf("  build       eps=%g dim=%d seed=%d boundary=%d ecc-cache=%v\n",
		rep.Params.Epsilon, rep.Dim, rep.Params.Seed, rep.BoundaryL, rep.HasEcc)
	for _, sec := range rep.Sections {
		crc := "ok"
		if !sec.CRCOK {
			crc = "CORRUPT"
		}
		fmt.Printf("  section %-9s %9d bytes  crc %s", sec.Name, sec.Bytes, crc)
		if sec.Details != "" {
			fmt.Printf("  (%s)", sec.Details)
		}
		fmt.Println()
	}
}

package main

import (
	"context"
	"flag"
	"fmt"

	"resistecc"
)

// cmdCentrality handles `recc centrality`: rank nodes by one of the
// centrality measures related to resistance eccentricity.
func cmdCentrality(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("centrality", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	measure := fs.String("measure", "currentflow", "closeness|harmonic|currentflow|pagerank-free approx: cf-approx")
	top := fs.Int("top", 10, "print the top-k nodes")
	eps := fs.Float64("eps", 0.3, "approximation parameter (cf-approx)")
	dim := fs.Int("dim", 128, "sketch dimension (cf-approx)")
	seed := fs.Int64("seed", 1, "sketch seed (cf-approx)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	var scores []float64
	switch *measure {
	case "closeness":
		scores = g.Closeness()
	case "harmonic":
		scores = g.Harmonic()
	case "currentflow":
		scores, err = g.CurrentFlowCloseness()
		if err != nil {
			return err
		}
	case "cf-approx":
		idx, err := resistecc.NewApproxIndex(ctx, g,
			resistecc.WithEpsilon(*eps), resistecc.WithDim(*dim), resistecc.WithSeed(*seed))
		if err != nil {
			return err
		}
		scores = idx.CurrentFlowCloseness()
	default:
		return fmt.Errorf("unknown measure %q", *measure)
	}
	k := *top
	if k > len(scores) {
		k = len(scores)
	}
	ranked, err := resistecc.TopCentral(scores, k)
	if err != nil {
		return err
	}
	fmt.Printf("top %d nodes by %s centrality:\n", k, *measure)
	for i, v := range ranked {
		fmt.Printf("  %2d. node %-8d %.6f\n", i+1, v, scores[v])
	}
	return nil
}

// cmdSpectral handles `recc spectral`: global invariants of the network.
func cmdSpectral(args []string) error {
	fs := flag.NewFlagSet("spectral", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	exact := fs.Bool("exact", false, "exact O(n^3) invariants instead of estimators")
	probes := fs.Int("probes", 64, "Hutchinson probes for the estimators")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	l2, err := g.AlgebraicConnectivity(*seed)
	if err != nil {
		return err
	}
	lmax, err := g.LaplacianSpectralRadius(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("algebraic connectivity λ₂   = %.6f  (R(G) ≤ 2/λ₂ = %.3f)\n", l2, 2/l2)
	fmt.Printf("Laplacian spectral radius   = %.6f\n", lmax)
	var kf, km float64
	if *exact {
		if kf, err = g.KirchhoffIndex(); err != nil {
			return err
		}
		if km, err = g.KemenyConstant(); err != nil {
			return err
		}
	} else {
		opt := resistecc.SpectralEstimateOptions{Probes: *probes, Seed: *seed}
		if kf, err = g.EstimateKirchhoffIndex(opt); err != nil {
			return err
		}
		if km, err = g.EstimateKemenyConstant(opt); err != nil {
			return err
		}
	}
	mode := "estimated"
	if *exact {
		mode = "exact"
	}
	fmt.Printf("Kirchhoff index (%s)   = %.3f\n", mode, kf)
	fmt.Printf("Kemeny constant (%s)   = %.3f\n", mode, km)
	return nil
}

// cmdHitting handles `recc hitting`: expected random-walk hitting times.
func cmdHitting(args []string) error {
	fs := flag.NewFlagSet("hitting", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list")
	target := fs.Int("target", 0, "target node")
	sources := fs.String("sources", "", "comma-separated sources (default: 5 farthest)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadLCC(*in)
	if err != nil {
		return err
	}
	if *target < 0 || *target >= g.N() {
		return fmt.Errorf("target %d out of range (n=%d)", *target, g.N())
	}
	h, err := g.HittingTimes(*target)
	if err != nil {
		return err
	}
	var srcs []int
	if *sources != "" {
		srcs, err = parseNodes(*sources, g.N())
		if err != nil {
			return err
		}
	} else {
		srcs, err = resistecc.TopCentral(h, min(5, g.N()))
		if err != nil {
			return err
		}
	}
	fmt.Printf("expected hitting times to node %d:\n", *target)
	for _, u := range srcs {
		fmt.Printf("  H(%d, %d) = %.3f\n", u, *target, h[u])
	}
	return nil
}

package main

import (
	"context"
	"encoding/binary"
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"resistecc/internal/persist"
	"resistecc/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the inspect golden files")

// inspectOutput runs `recc inspect` on path and captures its stdout, with the
// fixture directory and the wall-clock save time scrubbed so the output is
// byte-stable across runs and machines.
func inspectOutput(t *testing.T, dir, path string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), []string{"inspect", "-path", path})
	w.Close()
	os.Stdout = old
	out, readErr := io.ReadAll(r)
	r.Close()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if runErr != nil {
		t.Fatalf("inspect %s: %v", path, runErr)
	}
	s := strings.ReplaceAll(string(out), dir+string(os.PathSeparator), "")
	return regexp.MustCompile(`(?m)^(  saved       ).*$`).ReplaceAllString(s, "${1}<time>")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "inspect", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record it)", err)
	}
	if got != string(want) {
		t.Errorf("inspect output for %s diverged from %s:\n--- got ---\n%s--- want ---\n%s", name, golden, got, want)
	}
}

// tailRecords is the shared mutation run the WAL and tail-frame fixtures
// carry; EncodeTailFrame is the one exported producer of encoded WAL records.
func tailRecords() []persist.Record {
	return []persist.Record{
		{Seq: 1, Add: true, U: 0, V: 1},
		{Seq: 2, Add: true, U: 1, V: 2},
		{Seq: 3, Add: false, U: 0, V: 1},
	}
}

func tailFrameBytes() []byte {
	return persist.EncodeTailFrame(persist.TailFrame{
		LastSeq: 9, WriterGen: 2, SnapSeq: 5, SnapGen: 2, Records: tailRecords(),
	})
}

// walBytes assembles a WAL file image: the 12-byte header followed by the
// same 21-byte records a tail frame carries after its 52-byte header.
func walBytes() []byte {
	b := make([]byte, 0, 12+3*21)
	b = append(b, persist.WALMagic...)
	b = binary.LittleEndian.AppendUint32(b, persist.FormatVersion)
	return append(b, tailFrameBytes()[52:]...)
}

func writeFixture(t *testing.T, dir, name string, b []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInspectGoldenOutputs pins `recc inspect` output for all four on-disk
// formats — snapshot, WAL, tail frame, trace — each in a healthy, torn-tail,
// and corrupt-CRC variant. The goldens are the operator-facing contract: a
// format or renderer change that shifts them must be deliberate (-update).
func TestInspectGoldenOutputs(t *testing.T) {
	dir := t.TempDir()

	// Snapshot fixtures come from a real seeded build; the encoder is
	// deterministic, so sizes and details below the scrubbed save time are
	// byte-stable.
	graphPath := writeTestGraph(t)
	snapPath := filepath.Join(dir, "snap-healthy.snap")
	if err := run(context.Background(), []string{
		"snapshot", "-in", graphPath, "-out", snapPath, "-dim", "48", "-eps", "0.3",
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte{}, snap...)
	corrupt[len(corrupt)-1] ^= 0xFF // the final section's stored CRC
	writeFixture(t, dir, "snap-corrupt.snap", corrupt)
	writeFixture(t, dir, "snap-torn.snap", snap[:len(snap)/2])

	wal := walBytes()
	writeFixture(t, dir, "wal-healthy.wal", wal)
	corrupt = append([]byte{}, wal...)
	corrupt[12+21+4] ^= 0xFF // inside the second record's payload
	writeFixture(t, dir, "wal-corrupt.wal", corrupt)
	writeFixture(t, dir, "wal-torn.wal", wal[:len(wal)-11]) // mid third record

	frame := tailFrameBytes()
	writeFixture(t, dir, "tail-healthy.frame", frame)
	corrupt = append([]byte{}, frame...)
	corrupt[52+21+4] ^= 0xFF // inside the second record's payload
	writeFixture(t, dir, "tail-corrupt.frame", corrupt)
	writeFixture(t, dir, "tail-torn.frame", frame[:len(frame)-10])

	w := trace.Workload{Nodes: 16, Ops: 8, Seed: 3, MaxBatch: 2, MutationRate: 0.25}
	recs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	trcPath := filepath.Join(dir, "trc-healthy.trc")
	if err := trace.WriteFile(trcPath, recs); err != nil {
		t.Fatal(err)
	}
	trc, err := os.ReadFile(trcPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupt = append([]byte{}, trc...)
	corrupt[len(corrupt)-1] ^= 0xFF // the last record's stored CRC
	writeFixture(t, dir, "trc-corrupt.trc", corrupt)
	writeFixture(t, dir, "trc-torn.trc", trc[:len(trc)-5])

	for _, name := range []string{
		"snap-healthy.snap", "snap-corrupt.snap", "snap-torn.snap",
		"wal-healthy.wal", "wal-corrupt.wal", "wal-torn.wal",
		"tail-healthy.frame", "tail-corrupt.frame", "tail-torn.frame",
		"trc-healthy.trc", "trc-corrupt.trc", "trc-torn.trc",
	} {
		t.Run(name, func(t *testing.T) {
			checkGolden(t, name, inspectOutput(t, dir, filepath.Join(dir, name)))
		})
	}
}

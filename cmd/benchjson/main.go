// Command benchjson converts `go test -bench` output into the machine-readable
// bench-trajectory schema checked in as BENCH_<n>.json: one record per
// benchmark with its name, ns/op, allocs/op (when -benchmem was passed), and
// the batch size parsed from a `batch=<n>` sub-benchmark suffix.
//
// It reads one or more concatenated `go test -bench` runs on stdin — header
// (goos/goarch/cpu), PASS, and ok lines are skipped — so a Makefile target
// can pipe several invocations with different -benchtime settings through a
// single call:
//
//	{ go test -bench='BenchmarkBatch' -benchmem -run='^$' . ; \
//	  go test -bench='BenchmarkColdBuild' -benchtime=1x -benchmem -run='^$' . ; } \
//	| go run ./cmd/benchjson -o BENCH_6.json
//
// With -trend it instead reads every committed BENCH_<n>.json in numeric
// order and fails on any tracked metric moving more than 20% in its
// regression direction between a benchmark's consecutive appearances (see
// runTrend for the exact gates); CI runs this so a perf regression has to be
// acknowledged by rewriting the trajectory, never slipped in silently.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

type record struct {
	// Name is the benchmark name with the -<GOMAXPROCS> suffix stripped.
	Name string `json:"name"`
	// Batch is the query batch size for BenchmarkBatch*/batch=<n> entries,
	// 0 for benchmarks without one (ColdBuild, WarmStart).
	Batch int `json:"batch"`
	// Iterations is b.N for the reported run.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// AllocsPerOp is nil when the run was not executed with -benchmem.
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric columns keyed by unit — e.g. the
	// loadgen benchmarks report req/s, p50_ms, p99_ms and errs_5xx. Absent
	// when the line carried only the standard columns.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches testing's benchmark result format:
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   1 allocs/op
//
// with the memory columns optional.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+(?:e[+-]?\d+)?) ns/op(?:\s+[0-9.]+ B/op\s+(\d+) allocs/op)?`)

var batchSuffix = regexp.MustCompile(`(?:^|[/_])batch=(\d+)`)

// metricPair matches any `<value> <unit>` column; standard columns are
// filtered out so Metrics carries only b.ReportMetric extras.
var metricPair = regexp.MustCompile(`([0-9.]+(?:e[+-]?\d+)?) ([A-Za-z_][A-Za-z_0-9/%]*)`)

var standardUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}

func parse(r io.Reader) ([]record, error) {
	var recs []record
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: iterations in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: ns/op in %q: %w", sc.Text(), err)
		}
		rec := record{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[5] != "" {
			allocs, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: allocs/op in %q: %w", sc.Text(), err)
			}
			rec.AllocsPerOp = &allocs
		}
		for _, pm := range metricPair.FindAllStringSubmatch(sc.Text(), -1) {
			if standardUnits[pm[2]] {
				continue
			}
			v, err := strconv.ParseFloat(pm[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: metric %s in %q: %w", pm[2], sc.Text(), err)
			}
			if rec.Metrics == nil {
				rec.Metrics = make(map[string]float64)
			}
			rec.Metrics[pm[2]] = v
		}
		if bm := batchSuffix.FindStringSubmatch(rec.Name); bm != nil {
			n, err := strconv.Atoi(bm[1])
			if err != nil {
				return nil, fmt.Errorf("benchjson: batch size in %q: %w", rec.Name, err)
			}
			rec.Batch = n
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

func run(in io.Reader, out io.Writer) error {
	recs, err := parse(in)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines on input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

func main() {
	outPath := flag.String("o", "", "write JSON to this file instead of stdout")
	trend := flag.Bool("trend", false, "compare the committed BENCH_*.json trajectory and fail on regressions")
	trendDir := flag.String("trend-dir", ".", "directory holding the BENCH_*.json trajectory (with -trend)")
	flag.Parse()
	if *trend {
		if err := runTrend(*trendDir, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// Render into memory first so the output file is written (and its close
	// error checked) in one step, never left half-filled on a parse error.
	var buf bytes.Buffer
	if err := run(os.Stdin, &buf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outPath == "" {
		if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: resistecc
cpu: AMD EPYC 7B13
BenchmarkBatchQuery/batch=1-8         	  501868	      2304 ns/op	       0 B/op	       0 allocs/op
BenchmarkBatchQuery/batch=256-8       	    4096	    281455 ns/op	       0 B/op	       0 allocs/op
BenchmarkBatchSerial/batch=256-8      	    1875	    641002 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	resistecc	12.345s
goos: linux
BenchmarkColdBuild-8   	       1	14713553898 ns/op	275312640 B/op	  513042 allocs/op
BenchmarkWarmStart-8   	       1	  52034110 ns/op
PASS
ok  	resistecc	15.001s
goos: linux
BenchmarkLoadgenSingleNode-8   	       1	  91234567 ns/op	         0 errs_5xx	        12.3 p50_ms	        45.6 p99_ms	      1639 req/s
PASS
ok  	resistecc/cmd/reccd	2.002s
`

func TestParse(t *testing.T) {
	recs, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("parsed %d records, want 6", len(recs))
	}
	q1 := recs[0]
	if q1.Name != "BenchmarkBatchQuery/batch=1" || q1.Batch != 1 ||
		q1.Iterations != 501868 || q1.NsPerOp != 2304 {
		t.Fatalf("record 0 = %+v", q1)
	}
	if q1.AllocsPerOp == nil || *q1.AllocsPerOp != 0 {
		t.Fatalf("record 0 allocs = %v, want 0", q1.AllocsPerOp)
	}
	if recs[2].Batch != 256 || recs[2].Name != "BenchmarkBatchSerial/batch=256" {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	cold := recs[3]
	if cold.Name != "BenchmarkColdBuild" || cold.Batch != 0 ||
		cold.AllocsPerOp == nil || *cold.AllocsPerOp != 513042 {
		t.Fatalf("record 3 = %+v", cold)
	}
	// WarmStart line carries no -benchmem columns: allocs must stay absent,
	// not zero.
	if warm := recs[4]; warm.AllocsPerOp != nil || warm.NsPerOp != 52034110 {
		t.Fatalf("record 4 = %+v", warm)
	}
	if warm := recs[4]; warm.Metrics != nil {
		t.Fatalf("record 4 metrics = %v, want absent", warm.Metrics)
	}
	// ReportMetric extras land in Metrics keyed by unit; standard columns
	// never do.
	load := recs[5]
	if load.Name != "BenchmarkLoadgenSingleNode" || load.NsPerOp != 91234567 {
		t.Fatalf("record 5 = %+v", load)
	}
	want := map[string]float64{"errs_5xx": 0, "p50_ms": 12.3, "p99_ms": 45.6, "req/s": 1639}
	if len(load.Metrics) != len(want) {
		t.Fatalf("record 5 metrics = %v, want %v", load.Metrics, want)
	}
	for k, v := range want {
		if load.Metrics[k] != v {
			t.Fatalf("record 5 metric %s = %v, want %v", k, load.Metrics[k], v)
		}
	}
}

func TestParseRejectsEmptyViaRun(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\nok resistecc 0.1s\n"), &out); err == nil {
		t.Fatal("run on input with no benchmark lines: want error, got nil")
	}
}

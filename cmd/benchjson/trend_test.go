package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrajectory(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchFilesNumericOrder(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_10.json", "BENCH_2.json", "BENCH_6.json", "BENCH_x.json", "notes.txt"} {
		writeTrajectory(t, dir, name, "[]")
	}
	files, err := benchFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range files {
		names = append(names, filepath.Base(f))
	}
	want := "BENCH_2.json BENCH_6.json BENCH_10.json"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("benchFiles order = %q, want %q", got, want)
	}
}

func TestTrendCleanTrajectory(t *testing.T) {
	dir := t.TempDir()
	// +10% ns/op and -10% req/s stay inside the 20% budget; the one-shot
	// ColdBuild doubling is exempt (iterations == 1); the new Loadgen record
	// in file 2 has no baseline and is skipped.
	writeTrajectory(t, dir, "BENCH_1.json", `[
	  {"name":"BenchmarkBatchQuery/batch=16","batch":16,"iterations":1000,"ns_per_op":1000,"allocs_per_op":0},
	  {"name":"BenchmarkColdBuild","batch":0,"iterations":1,"ns_per_op":1e10}
	]`)
	writeTrajectory(t, dir, "BENCH_2.json", `[
	  {"name":"BenchmarkBatchQuery/batch=16","batch":16,"iterations":1000,"ns_per_op":1100,"allocs_per_op":0},
	  {"name":"BenchmarkColdBuild","batch":0,"iterations":1,"ns_per_op":2e10},
	  {"name":"BenchmarkLoadgenSingleNode","batch":0,"iterations":1,"ns_per_op":4e8,
	   "metrics":{"errs_5xx":0,"p99_ms":50,"req/s":5000}}
	]`)
	var out strings.Builder
	if err := runTrend(dir, &out); err != nil {
		t.Fatalf("clean trajectory failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 gated comparison(s), 0 regression(s)") {
		t.Errorf("unexpected summary:\n%s", out.String())
	}
}

func TestTrendCatchesRegressions(t *testing.T) {
	dir := t.TempDir()
	writeTrajectory(t, dir, "BENCH_1.json", `[
	  {"name":"BenchmarkBatchQuery/batch=16","batch":16,"iterations":1000,"ns_per_op":1000,"allocs_per_op":0},
	  {"name":"BenchmarkBatchQuery/batch=256","batch":256,"iterations":1000,"ns_per_op":1000,
	   "metrics":{"q/s":1000}}
	]`)
	writeTrajectory(t, dir, "BENCH_2.json", `[
	  {"name":"BenchmarkBatchQuery/batch=16","batch":16,"iterations":1000,"ns_per_op":1300,"allocs_per_op":2},
	  {"name":"BenchmarkBatchQuery/batch=256","batch":256,"iterations":1000,"ns_per_op":1000,
	   "metrics":{"q/s":700}},
	  {"name":"BenchmarkLoadgenSingleNode","batch":0,"iterations":1,"ns_per_op":4e8,
	   "metrics":{"errs_5xx":3}}
	]`)
	var out strings.Builder
	err := runTrend(dir, &out)
	if err == nil {
		t.Fatalf("regressed trajectory passed:\n%s", out.String())
	}
	for _, want := range []string{
		"1000 -> 1300 ns/op",     // +30% latency
		"allocates (2 allocs/op", // zero-alloc benchmark started allocating
		"1000 -> 700 q/s",        // -30% throughput (higher-is-better unit)
		"saw 3 5xx answers",      // absolute gate, one-shot or not
		"4 regression(s) over the 20% budget",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output is missing %q:\n%s", want, out.String())
		}
	}
}

// TestTrendCommittedTrajectory runs the real gate over the repository's own
// committed BENCH_*.json files — the same invocation CI uses — so a record
// that would fail CI cannot be committed past this test.
func TestTrendCommittedTrajectory(t *testing.T) {
	var out strings.Builder
	if err := runTrend(filepath.Join("..", ".."), &out); err != nil {
		t.Fatalf("committed trajectory fails the trend gate: %v\n%s", err, out.String())
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// trendThreshold is the regression budget: a tracked metric may drift this
// fraction worse between consecutive trajectory records before -trend fails.
const trendThreshold = 0.20

var benchFileName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// benchFiles returns the committed trajectory files in dir, ordered by their
// numeric index (BENCH_2 before BENCH_10, which lexical order would flip).
func benchFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type indexed struct {
		n    int
		name string
	}
	var files []indexed
	for _, e := range entries {
		m := benchFileName.FindStringSubmatch(e.Name())
		if e.IsDir() || m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			return nil, fmt.Errorf("benchjson: index in %q: %w", e.Name(), err)
		}
		files = append(files, indexed{n, e.Name()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = filepath.Join(dir, f.name)
	}
	return out, nil
}

func loadRecords(path string) ([]record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(b, &recs); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return recs, nil
}

// higherIsBetter reports whether a larger value of a custom metric unit is an
// improvement: throughput units are, latencies are not.
func higherIsBetter(unit string) bool { return strings.HasSuffix(unit, "/s") }

// runTrend reads every BENCH_<n>.json in dir and walks the trajectory oldest
// to newest, comparing each benchmark against its previous appearance. Two
// gates apply: any record carrying errs_5xx > 0 fails outright (the count is
// exact regardless of run length), and multi-iteration benchmarks fail on a
// >trendThreshold move in the regression direction of ns/op, allocs/op, or
// any custom metric. One-shot runs (-benchtime=1x: cold builds, load probes)
// are carried and printed but exempt from the ratio gate — a single
// iteration's wall time swings far past any useful threshold.
func runTrend(dir string, out io.Writer) error {
	files, err := benchFiles(dir)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("benchjson: no BENCH_*.json files in %s", dir)
	}
	history := make([][]record, len(files))
	for i, f := range files {
		if history[i], err = loadRecords(f); err != nil {
			return err
		}
	}
	regressions := 0
	for i, recs := range history {
		for _, r := range recs {
			if v, ok := r.Metrics["errs_5xx"]; ok && v > 0 {
				fmt.Fprintf(out, "REGRESSION %s: %s saw %g 5xx answers\n", files[i], r.Name, v)
				regressions++
			}
		}
	}
	comparisons := 0
	for i := 1; i < len(files); i++ {
		prev := make(map[string]record, len(history[i-1]))
		for _, r := range history[i-1] {
			prev[r.Name] = r
		}
		for _, r := range history[i] {
			p, ok := prev[r.Name]
			if !ok {
				continue // first appearance: nothing to compare against
			}
			if p.Iterations == 1 || r.Iterations == 1 {
				continue // one-shot smoke run: exempt from the ratio gate
			}
			comparisons++
			regressions += compareRecords(out, files[i-1], files[i], p, r)
		}
	}
	fmt.Fprintf(out, "trend: %d file(s), %d gated comparison(s), %d regression(s) over the %d%% budget\n",
		len(files), comparisons, regressions, int(trendThreshold*100))
	if regressions > 0 {
		return fmt.Errorf("benchjson: %d regression(s) in the bench trajectory", regressions)
	}
	return nil
}

// compareRecords prints every over-budget move from p (in file from) to r (in
// file to) and returns how many it found.
func compareRecords(out io.Writer, from, to string, p, r record) int {
	n := 0
	report := func(unit string, old, new float64) {
		fmt.Fprintf(out, "REGRESSION %s: %s %g -> %g %s (%+.1f%%) since %s\n",
			to, r.Name, old, new, unit, 100*(new-old)/old, from)
		n++
	}
	if r.NsPerOp > p.NsPerOp*(1+trendThreshold) {
		report("ns/op", p.NsPerOp, r.NsPerOp)
	}
	if p.AllocsPerOp != nil && r.AllocsPerOp != nil {
		old, new := float64(*p.AllocsPerOp), float64(*r.AllocsPerOp)
		// A benchmark that was allocation-free must stay so; any nonzero
		// count after a zero baseline is a regression at every threshold.
		if old == 0 && new > 0 {
			fmt.Fprintf(out, "REGRESSION %s: %s allocates (%g allocs/op, was 0) since %s\n", to, r.Name, new, from)
			n++
		} else if new > old*(1+trendThreshold) {
			report("allocs/op", old, new)
		}
	}
	units := make([]string, 0, len(r.Metrics))
	for unit := range r.Metrics {
		if unit == "errs_5xx" { // gated absolutely, per file
			continue
		}
		if _, ok := p.Metrics[unit]; ok {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	for _, unit := range units {
		old, new := p.Metrics[unit], r.Metrics[unit]
		if higherIsBetter(unit) {
			if new < old*(1-trendThreshold) {
				report(unit, old, new)
			}
		} else if new > old*(1+trendThreshold) {
			report(unit, old, new)
		}
	}
	return n
}

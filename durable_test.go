package resistecc

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func durableOpts() []Option {
	return []Option{WithEpsilon(0.3), WithDim(64), WithSeed(21)}
}

func durableGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := RandomConnected(60, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// coldDistribution is the ground truth a recovered index must match
// bit-for-bit: a cold FastIndex of the same graph with the same options.
func coldDistribution(t *testing.T, g *Graph) []float64 {
	t.Helper()
	f, err := NewFastIndex(context.Background(), g, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	return f.Distribution()
}

func dynDistribution(d *DynamicIndex) []float64 {
	return d.Snapshot().Index.Distribution()
}

func sameDistribution(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: eccentricity of node %d differs: %g vs %g", what, v, got[v], want[v])
		}
	}
}

func TestOpenDynamicIndexColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	g := durableGraph(t)
	ctx := context.Background()

	d, info, err := OpenDynamicIndex(ctx, dir, g, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if info.Warm || info.Reason != "no snapshot" {
		t.Fatalf("first open: %+v", info)
	}
	want := dynDistribution(d)
	sameDistribution(t, want, coldDistribution(t, g), "cold open vs cold build")
	gen := d.Snapshot().Generation
	d.Close()

	d2, info, err := OpenDynamicIndex(ctx, dir, g, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !info.Warm || info.ReplayedMutations != 0 {
		t.Fatalf("second open not warm: %+v", info)
	}
	if got := d2.Snapshot().Generation; got != gen {
		t.Fatalf("generation not preserved: %d vs %d", got, gen)
	}
	sameDistribution(t, dynDistribution(d2), want, "warm restart")

	ps := d2.PersistStats()
	if !ps.Durable || !ps.HasSnapshot || ps.WALRecords != 0 {
		t.Fatalf("persist stats after warm start: %+v", ps)
	}
}

// TestCrashRecoveryReplaysWAL is the kill-after-WAL-append case: mutations
// are acknowledged (and logged) but the process dies before any checkpoint.
// Recovery must replay them and, once quiesced, answer exactly like a cold
// build of the final edge set.
func TestCrashRecoveryReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	g := durableGraph(t)
	ctx := context.Background()

	// High rebuild thresholds keep every mutation on the incremental path, so
	// no rebuild checkpoint absorbs the WAL before the "crash".
	opts := append(durableOpts(), WithDriftThreshold(100), WithMaxDeletions(1000))
	d, _, err := OpenDynamicIndex(ctx, dir, g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	muts := []struct {
		add  bool
		u, v int
	}{
		{true, 0, 30}, {true, 5, 45}, {false, 0, 30}, {true, 7, 52},
	}
	final := g.Clone()
	for _, mu := range muts {
		if mu.add {
			if _, err := d.AddEdge(ctx, mu.u, mu.v); err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", mu.u, mu.v, err)
			}
			if err := final.AddEdge(mu.u, mu.v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := d.RemoveEdge(ctx, mu.u, mu.v); err != nil {
				t.Fatalf("RemoveEdge(%d,%d): %v", mu.u, mu.v, err)
			}
			if err := final.RemoveEdge(mu.u, mu.v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ps := d.PersistStats(); ps.JournalFailures != 0 || ps.WALRecords != len(muts) {
		t.Fatalf("pre-crash persist state: %+v", ps)
	}
	d.Close() // crash: no checkpoint call

	d2, info, err := OpenDynamicIndex(ctx, dir, g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !info.Warm {
		t.Fatalf("recovery fell back to cold build: %+v", info)
	}
	if info.ReplayedMutations != len(muts) {
		t.Fatalf("replayed %d WAL records, want %d: %+v", info.ReplayedMutations, len(muts), info)
	}
	if got := d2.Stats().GraphM; got != final.M() {
		t.Fatalf("recovered graph has %d edges, want %d", got, final.M())
	}

	// Quiesce to the canonical state and compare against a cold build of
	// the final edge set — bit-identical, not approximately equal.
	d2.TriggerRebuild()
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := d2.WaitIdle(wctx); err != nil {
		t.Fatal(err)
	}
	sameDistribution(t, dynDistribution(d2), coldDistribution(t, final), "recovered vs cold build")
}

func TestRecoveryCorruptSnapshotFallsBackToColdBuild(t *testing.T) {
	dir := t.TempDir()
	g := durableGraph(t)
	ctx := context.Background()

	d, _, err := OpenDynamicIndex(ctx, dir, g, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Flip a bit in every snapshot file in the store.
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot written: %v", err)
	}
	for _, p := range snaps {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x20
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d2, info, err := OpenDynamicIndex(ctx, dir, g, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.Warm {
		t.Fatal("corrupt snapshot served warm")
	}
	// Degraded to a cold build — and the answers are the cold build's.
	sameDistribution(t, dynDistribution(d2), coldDistribution(t, g), "fallback vs cold build")
	// The store healed: a fresh snapshot exists again.
	if ps := d2.PersistStats(); !ps.HasSnapshot {
		t.Fatalf("store not re-seeded after fallback: %+v", ps)
	}
}

func TestRecoveryRejectsChangedParamsOrGraph(t *testing.T) {
	dir := t.TempDir()
	g := durableGraph(t)
	ctx := context.Background()

	d, _, err := OpenDynamicIndex(ctx, dir, g, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Different sketch dimension: the stored artifact answers a different
	// quality contract; recovery must not serve it.
	d2, info, err := OpenDynamicIndex(ctx, dir, g, WithEpsilon(0.3), WithDim(32), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if info.Warm {
		t.Fatal("warm start across a parameter change")
	}
	d2.Close()

	// Different input graph (simulates a changed -in file).
	g2, err := RandomConnected(60, 150, 99)
	if err != nil {
		t.Fatal(err)
	}
	d3, info, err := OpenDynamicIndex(ctx, dir, g2, WithEpsilon(0.3), WithDim(32), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if info.Warm {
		t.Fatal("warm start across an input-graph change")
	}
	sameDistribution(t, dynDistribution(d3),
		func() []float64 {
			f, ferr := NewFastIndex(ctx, g2, WithEpsilon(0.3), WithDim(32), WithSeed(21))
			if ferr != nil {
				t.Fatal(ferr)
			}
			return f.Distribution()
		}(), "post-change cold build")
}

func TestSaveAndLoadSnapshot(t *testing.T) {
	g := durableGraph(t)
	ctx := context.Background()
	d, err := NewDynamicIndex(ctx, g, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddEdge(ctx, 2, 40); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := d.WaitIdle(wctx); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.snap")
	if err := d.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	want := dynDistribution(d)
	gen := d.Snapshot().Generation
	d.Close()

	// Checkpoint on a non-durable index is an error, not a silent no-op.
	if err := d.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint without data dir: %v", err)
	}

	d2, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	defer d2.Close()
	if got := d2.Snapshot().Generation; got != gen {
		t.Fatalf("generation not preserved: %d vs %d", got, gen)
	}
	sameDistribution(t, dynDistribution(d2), want, "loaded snapshot")

	// The loaded index keeps serving mutations.
	if _, err := d2.AddEdge(ctx, 1, 33); err != nil {
		t.Fatalf("mutation on loaded index: %v", err)
	}

	// Conflicting build options are rejected.
	if _, err := LoadSnapshot(path, WithEpsilon(0.2)); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("want ErrSnapshotMismatch, got %v", err)
	}
	// Matching build options are fine.
	d3, err := LoadSnapshot(path, durableOpts()...)
	if err != nil {
		t.Fatalf("LoadSnapshot with matching options: %v", err)
	}
	d3.Close()
}

func TestDurableCheckpointOnDemand(t *testing.T) {
	dir := t.TempDir()
	g := durableGraph(t)
	ctx := context.Background()

	d, _, err := OpenDynamicIndex(ctx, dir, g, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.AddEdge(ctx, 3, 41); err != nil {
		t.Fatal(err)
	}
	if ps := d.PersistStats(); ps.WALRecords != 1 {
		t.Fatalf("wal records before checkpoint: %+v", ps)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ps := d.PersistStats()
	if ps.WALRecords != 0 || !ps.HasSnapshot || ps.SnapshotSeq != 1 {
		t.Fatalf("post-checkpoint stats: %+v", ps)
	}
	// Idempotent while nothing changed.
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("no-op checkpoint: %v", err)
	}
	if got := d.PersistStats().Checkpoints; got != ps.Checkpoints {
		t.Fatalf("no-op checkpoint wrote a snapshot: %d vs %d", got, ps.Checkpoints)
	}
}

package resistecc

import (
	"context"
	"math/rand"
	"testing"

	"resistecc/internal/centrality"
	"resistecc/internal/diffusion"
	"resistecc/internal/eigen"
	"resistecc/internal/graph"
	"resistecc/internal/hitting"
	"resistecc/internal/linalg"
	"resistecc/internal/solver"
	"resistecc/internal/sparsify"
	"resistecc/internal/spectral"
	"resistecc/internal/ust"
)

// Benches for the extension subsystems (future-work items and substrate
// tools beyond the paper's tables): spectral invariants, hitting times,
// Wilson UST sampling, sparsification, centralities, eigensolvers.

func BenchmarkSpectralKirchhoffExact(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			b.Fatal(err)
		}
		_ = spectral.KirchhoffExact(lp)
	}
}

func BenchmarkSpectralKirchhoffEstimate(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.KirchhoffEstimate(g, spectral.EstimateOptions{Probes: 64, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectralKemenyEstimate(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.KemenyEstimate(g, spectral.EstimateOptions{Probes: 64, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHittingColumn(b *testing.B) {
	g := benchProxy(b, "Politician", 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hitting.ToTarget(g, i%g.N(), solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUSTSample(b *testing.B) {
	g := benchProxy(b, "Politician", 0.1)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ust.Sample(g, 0, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUSTEdgeResistances(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ust.EdgeResistances(g, 50, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparsifyDense(b *testing.B) {
	g := graph.BarabasiAlbert(300, 30, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparsify.Sparsify(context.Background(), g, sparsify.Options{Epsilon: 0.5, Samples: 6000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenLambdaTwo(b *testing.B) {
	g := benchProxy(b, "Politician", 0.1)
	csr := g.ToCSR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.LambdaTwo(csr, eigen.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCentralityCurrentFlowApprox(b *testing.B) {
	g := benchProxy(b, "Politician", 0.1)
	ap, err := NewApproxIndex(context.Background(), wrapGraph(g), WithEpsilon(0.3), WithDim(96), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ap.CurrentFlowCloseness()
	}
}

func BenchmarkCentralityClosenessBFS(b *testing.B) {
	g := benchProxy(b, "Politician", 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = centrality.Closeness(g)
	}
}

func BenchmarkDiffusionSI(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := diffusion.SimulateSI(g, 0, diffusion.SIOptions{Beta: 0.3, Runs: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastDistributionParallel(b *testing.B) {
	g := benchProxy(b, "Politician", 0.1)
	fi, err := NewFastIndex(context.Background(), wrapGraph(g), WithEpsilon(0.3), WithDim(96), WithSeed(1), WithMaxHullVertices(48))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fi.DistributionParallel(0)
	}
}

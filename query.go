package resistecc

import (
	"fmt"

	"resistecc/internal/ecc"
	"resistecc/internal/sketch"
	"resistecc/internal/solver"
	"resistecc/internal/stats"
)

// Eccentricity is one query answer: the (approximate) resistance
// eccentricity Value of Node, with a witness Farthest node attaining it.
type Eccentricity struct {
	Node     int
	Value    float64
	Farthest int
}

func convValue(v ecc.Value) Eccentricity {
	return Eccentricity{Node: v.Node, Value: v.Ecc, Farthest: v.Farthest}
}

func convValues(vs []ecc.Value) []Eccentricity {
	out := make([]Eccentricity, len(vs))
	for i, v := range vs {
		out[i] = convValue(v)
	}
	return out
}

// SketchOptions configures the APPROXER resistance sketch underlying the
// approximate indexes and optimizers.
type SketchOptions struct {
	// Epsilon is the multiplicative error target ε ∈ (0,1).
	Epsilon float64
	// Dim overrides the sketch dimension; 0 uses the theoretical
	// ⌈24 ln n/ε²⌉ of the JL lemma, which is very conservative — practical
	// dimensions of 50–200 already achieve sub-percent mean error (see
	// EXPERIMENTS.md).
	Dim int
	// Seed makes the sketch deterministic.
	Seed int64
	// Workers caps solver parallelism (0 = GOMAXPROCS, 1 = single-threaded
	// like the paper's timing runs).
	Workers int
	// SolverTol overrides the Laplacian-solver relative residual (0 = 1e-10).
	SolverTol float64
}

func (o SketchOptions) internal() sketch.Options {
	return sketch.Options{
		Epsilon: o.Epsilon,
		Dim:     o.Dim,
		Seed:    o.Seed,
		Workers: o.Workers,
		Solver:  solver.Options{Tol: o.SolverTol},
	}
}

// TheoreticalSketchDim returns ⌈24 ln n / ε²⌉.
func TheoreticalSketchDim(n int, epsilon float64) int {
	return sketch.TheoreticalDim(n, epsilon)
}

// validateNodes rejects batch queries naming nodes outside [0, n), so a bad
// id surfaces as ErrNodeOutOfRange instead of an index panic.
func validateNodes(nodes []int, n int) error {
	for _, v := range nodes {
		if v < 0 || v >= n {
			return fmt.Errorf("resistecc: query node %d with n=%d: %w", v, n, ErrNodeOutOfRange)
		}
	}
	return nil
}

// ExactIndex answers exact resistance-eccentricity queries (EXACTQUERY,
// Algorithm 1). Construction costs O(n³) time and O(n²) memory; suitable up
// to a few tens of thousands of nodes.
type ExactIndex struct {
	ex *ecc.Exact
}

// N returns the node count of the indexed graph.
func (ix *ExactIndex) N() int { return ix.ex.Pinv().N }

// Resistance returns the exact effective resistance r(u, v).
func (ix *ExactIndex) Resistance(u, v int) float64 { return ix.ex.Resistance(u, v) }

// Eccentricity returns the exact c(v).
func (ix *ExactIndex) Eccentricity(v int) Eccentricity { return convValue(ix.ex.Eccentricity(v)) }

// Query answers a batch of eccentricity queries. Any node outside [0, n)
// fails the whole batch with ErrNodeOutOfRange.
func (ix *ExactIndex) Query(nodes []int) ([]Eccentricity, error) {
	if err := validateNodes(nodes, ix.N()); err != nil {
		return nil, err
	}
	return convValues(ix.ex.Query(nodes)), nil
}

// Distribution returns the exact E(G) indexed by node.
func (ix *ExactIndex) Distribution() []float64 { return ix.ex.Distribution() }

// ApproxIndex answers (1±ε)-approximate queries by scanning all n sketched
// embeddings per query (APPROXQUERY, Algorithm 2).
type ApproxIndex struct {
	ap *ecc.Approx
}

// N returns the node count of the indexed graph.
func (ix *ApproxIndex) N() int { return ix.ap.Sk.N }

// Resistance returns the sketched r̃(u, v).
func (ix *ApproxIndex) Resistance(u, v int) float64 { return ix.ap.Sk.Resistance(u, v) }

// Eccentricity returns c̄(v) by a full scan.
func (ix *ApproxIndex) Eccentricity(v int) Eccentricity { return convValue(ix.ap.Eccentricity(v)) }

// Query answers a batch of eccentricity queries. Any node outside [0, n)
// fails the whole batch with ErrNodeOutOfRange.
func (ix *ApproxIndex) Query(nodes []int) ([]Eccentricity, error) {
	if err := validateNodes(nodes, ix.N()); err != nil {
		return nil, err
	}
	return convValues(ix.ap.Query(nodes)), nil
}

// Distribution returns the approximate E(G).
func (ix *ApproxIndex) Distribution() []float64 { return ix.ap.Distribution() }

// SketchDim reports the dimension d actually used.
func (ix *ApproxIndex) SketchDim() int { return ix.ap.Sk.Dim }

// FastIndex is the paper's FASTQUERY (Algorithm 3): the sketch of
// ApproxIndex plus an approximate convex hull of the embedded nodes, so each
// query scans only the l boundary nodes. Guarantees
// (1−ε)c(v) ≤ ĉ(v) ≤ (1+ε)c(v) with high probability (Theorem 5.6).
type FastIndex struct {
	f *ecc.Fast
}

// N returns the node count of the indexed graph.
func (ix *FastIndex) N() int { return ix.f.Sk.N }

// Resistance returns the sketched r̃(u, v).
func (ix *FastIndex) Resistance(u, v int) float64 { return ix.f.Sk.Resistance(u, v) }

// Eccentricity returns ĉ(v) by scanning the hull boundary.
func (ix *FastIndex) Eccentricity(v int) Eccentricity { return convValue(ix.f.Eccentricity(v)) }

// Query answers a batch of eccentricity queries. Any node outside [0, n)
// fails the whole batch with ErrNodeOutOfRange.
func (ix *FastIndex) Query(nodes []int) ([]Eccentricity, error) {
	if err := validateNodes(nodes, ix.N()); err != nil {
		return nil, err
	}
	return convValues(ix.f.Query(nodes)), nil
}

// Distribution returns the approximate E(G) in Õ((m+nl)/ε²) total time.
func (ix *FastIndex) Distribution() []float64 { return ix.f.Distribution() }

// DistributionParallel is Distribution fanned out over the given worker
// count (0 = GOMAXPROCS); results are identical to the serial path.
func (ix *FastIndex) DistributionParallel(workers int) []float64 {
	return ix.f.DistributionParallel(workers)
}

// BoundarySize reports l = |Ŝ|, the hull-boundary node count each query
// scans — small for real-world networks (§V-C).
func (ix *FastIndex) BoundarySize() int { return ix.f.L() }

// Boundary returns the hull-boundary node ids Ŝ.
func (ix *FastIndex) Boundary() []int { return append([]int(nil), ix.f.Boundary...) }

// SketchDim reports the dimension d actually used.
func (ix *FastIndex) SketchDim() int { return ix.f.Sk.Dim }

// IndexBuildStats reports construction-time diagnostics of a FastIndex:
// the solver effort behind the APPROXER sketch (one CG solve per sketch
// row) and the APPROXCH hull outcome. Serving layers (cmd/reccd) surface
// these through health and metrics endpoints.
type IndexBuildStats struct {
	// SketchDim is the sketch dimension d (= number of Laplacian solves).
	SketchDim int
	// SolverWorkers is the solve parallelism used during the build.
	SolverWorkers int
	// SolverTotalIters sums CG iterations across all sketch rows.
	SolverTotalIters int
	// SolverMaxIters is the worst single row.
	SolverMaxIters int
	// SolverMaxResidual is the worst relative final residual ‖b−Lx‖/‖b‖.
	SolverMaxResidual float64
	// HullSize is l = |Ŝ|, the boundary-node count each query scans.
	HullSize int
	// HullCertified reports whether the θ-coverage guarantee held (false
	// when MaxHullVertices bound first).
	HullCertified bool
	// HullRounds is the number of greedy refinement insertions APPROXCH ran.
	HullRounds int
	// HullDiameter is the estimated embedded point-set diameter D̂.
	HullDiameter float64
}

// BuildStats returns the construction diagnostics of the index.
func (ix *FastIndex) BuildStats() IndexBuildStats {
	st := ix.f.Sk.Stats
	out := IndexBuildStats{
		SketchDim:         ix.f.Sk.Dim,
		SolverWorkers:     st.Workers,
		SolverTotalIters:  st.TotalIters,
		SolverMaxIters:    st.MaxIters,
		SolverMaxResidual: st.MaxResidual,
		HullSize:          len(ix.f.Boundary),
	}
	if h := ix.f.HullInfo; h != nil {
		out.HullCertified = h.Certified
		out.HullRounds = h.Rounds
		out.HullDiameter = h.Diameter
	}
	return out
}

// DistributionSummary aggregates an eccentricity distribution into the
// graph-level metrics of §III-C: resistance radius φ(G), resistance diameter
// R(G), the resistance center, and shape statistics.
type DistributionSummary struct {
	Radius   float64
	Diameter float64
	Center   []int
	Mean     float64
	Skewness float64
}

// Summarize computes a DistributionSummary from a distribution vector.
func Summarize(dist []float64) DistributionSummary {
	s := ecc.Summarize(dist)
	return DistributionSummary{
		Radius: s.Radius, Diameter: s.Diameter, Center: s.Center,
		Mean: s.Mean, Skewness: s.Skewness,
	}
}

// RelativeError computes σ (Eq. 8): the mean relative deviation of an
// approximate distribution from the exact one.
func RelativeError(approx, exact []float64) (float64, error) {
	return ecc.RelativeError(approx, exact)
}

// BurrFit is a maximum-likelihood Burr Type XII fit of a distribution
// (§IV-B models E(G) with this family).
type BurrFit struct {
	C, K, Lambda float64
	LogLik       float64
	KS           float64
}

// FitBurr fits the Burr XII family to positive samples by MLE.
func FitBurr(samples []float64) (*BurrFit, error) {
	f, err := stats.FitBurr(samples)
	if err != nil {
		return nil, err
	}
	return &BurrFit{C: f.C, K: f.K, Lambda: f.Lambda, LogLik: f.LogLik, KS: f.KS}, nil
}

// PDF evaluates the fitted Burr density.
func (b *BurrFit) PDF(x float64) float64 {
	return stats.Burr{C: b.C, K: b.K, Lambda: b.Lambda}.PDF(x)
}

// CDF evaluates the fitted Burr distribution function.
func (b *BurrFit) CDF(x float64) float64 {
	return stats.Burr{C: b.C, K: b.K, Lambda: b.Lambda}.CDF(x)
}

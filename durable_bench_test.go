package resistecc

import (
	"context"
	"path/filepath"
	"testing"
)

// The warm-start benchmarks quantify what the durable store buys: a cold
// build pays the full sketch solve (d Laplacian solves), a warm start only
// decodes the snapshot and rebuilds sketch row views over the stored bits.
// EXPERIMENTS.md records the measured ratio.

func warmBenchGraph(b *testing.B) *Graph {
	b.Helper()
	g, err := ScaleFreeMixed(800, 1, 5, 0.3, 11)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func warmBenchOpts() []Option {
	return []Option{WithEpsilon(0.3), WithDim(64), WithSeed(11)}
}

func BenchmarkColdBuild(b *testing.B) {
	g := warmBenchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewDynamicIndex(context.Background(), g, warmBenchOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		d.Close()
	}
}

func BenchmarkWarmStart(b *testing.B) {
	g := warmBenchGraph(b)
	path := filepath.Join(b.TempDir(), "index.snap")
	d, err := NewDynamicIndex(context.Background(), g, warmBenchOpts()...)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.SaveSnapshot(path); err != nil {
		b.Fatal(err)
	}
	d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := LoadSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		w.Close()
	}
}

package resistecc

import (
	"context"

	"resistecc/internal/ecc"
	"resistecc/internal/hull"
)

// HullOptions configures the APPROXCH approximate convex hull used by
// FastIndex, DynamicIndex and the REM optimizers. The zero value derives
// every parameter from the sketch: θ = ε/12 (Algorithm 3) and a seed tied to
// the sketch seed so rebuilds are bit-identical.
type HullOptions struct {
	// Theta is the coverage parameter θ ∈ (0,1); 0 means ε/12.
	Theta float64
	// Seed drives the random seeding directions; 0 derives from the sketch
	// seed.
	Seed int64
	// Directions is the number of random seeding directions; 0 means
	// min(2d+8, 64).
	Directions int
	// MaxVertices caps the boundary size l = |Ŝ|; 0 means no cap. A binding
	// cap may void the θ-coverage certificate (see IndexBuildStats).
	MaxVertices int
	// MaxFWIters caps Frank–Wolfe iterations per distance query; 0 derives
	// ⌈1/θ²⌉ clamped to [16, 4096].
	MaxFWIters int
}

func (h HullOptions) internal() hull.Options {
	return hull.Options{
		Theta:       h.Theta,
		Seed:        h.Seed,
		Directions:  h.Directions,
		MaxVertices: h.MaxVertices,
		MaxFWIters:  h.MaxFWIters,
	}
}

// buildConfig is the accumulated result of applying Options.
type buildConfig struct {
	sk   SketchOptions
	hull HullOptions

	// DynamicIndex-only knobs.
	driftThreshold float64
	maxDeletions   int
	queueSize      int
	follower       bool
}

// Option configures an index constructor (NewFastIndex, NewApproxIndex,
// NewDynamicIndex). Options compose left to right; later options win.
type Option func(*buildConfig)

// WithEpsilon sets the multiplicative error target ε ∈ (0,1). Required for
// every approximate index; constructors fail with ErrBadEpsilon otherwise.
func WithEpsilon(eps float64) Option {
	return func(c *buildConfig) { c.sk.Epsilon = eps }
}

// WithDim overrides the sketch dimension d; 0 uses the conservative
// theoretical ⌈24 ln n/ε²⌉.
func WithDim(d int) Option {
	return func(c *buildConfig) { c.sk.Dim = d }
}

// WithSeed makes the sketch (and the derived hull) deterministic.
func WithSeed(seed int64) Option {
	return func(c *buildConfig) { c.sk.Seed = seed }
}

// WithWorkers caps solver parallelism during the build (0 = GOMAXPROCS).
func WithWorkers(w int) Option {
	return func(c *buildConfig) { c.sk.Workers = w }
}

// WithSolverTol overrides the Laplacian-solver relative residual (0 = 1e-10).
func WithSolverTol(tol float64) Option {
	return func(c *buildConfig) { c.sk.SolverTol = tol }
}

// WithMaxHullVertices caps the hull boundary size l (0 = no cap). Shorthand
// for WithHullOptions with only MaxVertices set.
func WithMaxHullVertices(l int) Option {
	return func(c *buildConfig) { c.hull.MaxVertices = l }
}

// WithHullOptions replaces the full APPROXCH configuration.
func WithHullOptions(h HullOptions) Option {
	return func(c *buildConfig) { c.hull = h }
}

// WithSketchOptions replaces the full APPROXER configuration at once, for
// callers migrating from the struct-based constructors. Hull configuration
// is separate: use WithMaxHullVertices or WithHullOptions.
func WithSketchOptions(o SketchOptions) Option {
	return func(c *buildConfig) { c.sk = o }
}

// WithDriftThreshold sets the ε_drift rebuild trigger of a DynamicIndex:
// once the accumulated incremental-update drift exceeds it, a background
// rebuild is scheduled (0 = 0.5). Ignored by static indexes.
func WithDriftThreshold(d float64) Option {
	return func(c *buildConfig) { c.driftThreshold = d }
}

// WithMaxDeletions sets how many edge removals a DynamicIndex serves
// incrementally before forcing a background rebuild (0 = 16). Ignored by
// static indexes.
func WithMaxDeletions(k int) Option {
	return func(c *buildConfig) { c.maxDeletions = k }
}

// WithMutationQueue sets the DynamicIndex mutation queue capacity (0 = 64).
// Ignored by static indexes.
func WithMutationQueue(n int) Option {
	return func(c *buildConfig) { c.queueSize = n }
}

// WithFollower puts a DynamicIndex in follower mode: it never schedules
// local rebuilds, so its state is a pure deterministic function of the base
// state it was restored from plus the mutations applied to it. Replication
// replicas use it (with LoadSnapshotBytes) to stay bit-identical to the
// writer; a follower that cannot absorb a mutation incrementally stays
// stale until its owner restores a fresher snapshot. Ignored by static
// indexes.
func WithFollower() Option {
	return func(c *buildConfig) { c.follower = true }
}

func applyOptions(opts []Option) buildConfig {
	var c buildConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c buildConfig) fastOptions() ecc.FastOptions {
	return ecc.FastOptions{Sketch: c.sk.internal(), Hull: c.hull.internal()}
}

// NewExactIndex builds the exact index (EXACTQUERY, Algorithm 1) from a
// dense Laplacian pseudoinverse: O(n³) time, O(n²) memory. The context
// cancels the build. This is the successor of (*Graph).NewExactIndex.
func NewExactIndex(ctx context.Context, g *Graph) (*ExactIndex, error) {
	ex, err := ecc.NewExactContext(ctx, g.inner())
	if err != nil {
		return nil, err
	}
	return &ExactIndex{ex: ex}, nil
}

// NewApproxIndex builds the APPROXQUERY index (Algorithm 2): the APPROXER
// sketch, queries by full scan. WithEpsilon is required. The context cancels
// the build between solver rows. Successor of (*Graph).NewApproxIndex.
func NewApproxIndex(ctx context.Context, g *Graph, opts ...Option) (*ApproxIndex, error) {
	c := applyOptions(opts)
	ap, err := ecc.NewApproxContext(ctx, g.inner(), c.sk.internal())
	if err != nil {
		return nil, err
	}
	return &ApproxIndex{ap: ap}, nil
}

// NewFastIndex builds the FASTQUERY index (Algorithm 3): the APPROXER
// sketch plus the APPROXCH hull boundary, so each query scans only l
// boundary nodes. WithEpsilon is required. The context cancels the build
// between solver rows. Successor of (*Graph).NewFastIndex.
func NewFastIndex(ctx context.Context, g *Graph, opts ...Option) (*FastIndex, error) {
	c := applyOptions(opts)
	f, err := ecc.NewFastContext(ctx, g.inner(), c.fastOptions())
	if err != nil {
		return nil, err
	}
	return &FastIndex{f: f}, nil
}

package resistecc

import (
	"fmt"

	"resistecc/internal/centrality"
	"resistecc/internal/linalg"
)

// Closeness returns classical closeness centrality (n−1)/Σ_u d_hop(v,u) for
// every node, via n BFS traversals.
func (gr *Graph) Closeness() []float64 { return centrality.Closeness(gr.g) }

// Harmonic returns harmonic centrality Σ_{u≠v} 1/d_hop(v,u).
func (gr *Graph) Harmonic() []float64 { return centrality.Harmonic(gr.g) }

// CurrentFlowCloseness returns information centrality
// (n−1)/Σ_u r(v,u) for every node, exactly (O(n³) preprocessing).
func (gr *Graph) CurrentFlowCloseness() ([]float64, error) {
	lp, err := linalg.Pseudoinverse(gr.g)
	if err != nil {
		return nil, err
	}
	return centrality.CurrentFlowCloseness(lp), nil
}

// CurrentFlowCloseness estimates information centrality for all nodes from
// the index's resistance sketch in O(n·d) total.
func (ix *ApproxIndex) CurrentFlowCloseness() []float64 {
	return centrality.ApproxCurrentFlowCloseness(ix.ap.Sk)
}

// CurrentFlowCloseness estimates information centrality for all nodes from
// the index's resistance sketch in O(n·d) total.
func (ix *FastIndex) CurrentFlowCloseness() []float64 {
	return centrality.ApproxCurrentFlowCloseness(ix.f.Sk)
}

// TopCentral returns the indices of the k highest-scoring nodes.
func TopCentral(scores []float64, k int) ([]int, error) { return centrality.Top(scores, k) }

// ResistanceDiameter approximates R(G) = max_{u,v} r(u,v) by scanning only
// hull-boundary pairs (O(l²) sketched distances) and returns the value with
// a witness pair. A hull boundary with fewer than two nodes has no pair to
// scan and fails with ErrDegenerateHull — previously that case silently
// returned (0, [0 0]), indistinguishable from a genuine answer naming nodes
// 0 and 0.
func (ix *FastIndex) ResistanceDiameter() (float64, [2]int, error) {
	r, e, ok := ix.f.Diameter()
	if !ok {
		return 0, [2]int{}, fmt.Errorf("resistecc: resistance diameter over %d boundary nodes: %w",
			ix.f.L(), ErrDegenerateHull)
	}
	return r, [2]int{e.U, e.V}, nil
}

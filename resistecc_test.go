package resistecc

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

func TestPublicGraphBasics(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 || !g.Connected() {
		t.Fatalf("shape n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if err := g.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("degree %d", d)
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 2 {
		t.Fatalf("neighbors %v", nbrs)
	}
	edges := g.Edges()
	if len(edges) != 3 || edges[0] != [2]int{0, 1} {
		t.Fatalf("edges %v", edges)
	}
	c := g.Clone()
	if err := c.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("clone aliased")
	}
	if _, err := FromEdges(2, [][2]int{{0, 0}}); err == nil {
		t.Fatal("self-loop must fail")
	}
	hops := g.HopDistance(0)
	if hops[3] != 3 {
		t.Fatalf("hops %v", hops)
	}
}

func TestPublicGenerators(t *testing.T) {
	if g := PathGraph(5); g.N() != 5 || g.M() != 4 {
		t.Fatal("path")
	}
	if g := CycleGraph(5); g.M() != 5 {
		t.Fatal("cycle")
	}
	if g := StarGraph(5); g.Degree(0) != 4 {
		t.Fatal("star")
	}
	if g := CompleteGraph(5); g.M() != 10 {
		t.Fatal("complete")
	}
	if g := GridGraph(2, 3); g.N() != 6 {
		t.Fatal("grid")
	}
	if g := LollipopGraph(4, 2); g.N() != 6 {
		t.Fatal("lollipop")
	}
	if g := BarbellGraph(3, 1); g.N() != 7 {
		t.Fatal("barbell")
	}
	ba, err := BarabasiAlbert(100, 2, 1)
	if err != nil || !ba.Connected() {
		t.Fatalf("BA err %v", err)
	}
	if _, err := BarabasiAlbert(2, 5, 1); err == nil {
		t.Fatal("invalid BA params must error, not panic")
	}
	pc, err := PowerlawCluster(100, 2, 0.4, 1)
	if err != nil || pc.N() != 100 {
		t.Fatal("powerlaw cluster")
	}
	ws, err := WattsStrogatz(100, 4, 0.05, 1)
	if err != nil || !ws.Connected() {
		t.Fatal("WS")
	}
	er, err := ErdosRenyi(100, 0.05, 1)
	if err != nil || !er.Connected() {
		t.Fatal("ER")
	}
	rc, err := RandomConnected(30, 60, 1)
	if err != nil || rc.M() != 60 {
		t.Fatal("random connected")
	}
	if _, err := RandomConnected(5, 1, 1); err == nil {
		t.Fatal("invalid RC params must error")
	}
}

func TestPublicLCCAndStats(t *testing.T) {
	g := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	lcc, mapping := g.LargestComponent()
	if lcc.N() != 3 || len(mapping) != 3 {
		t.Fatalf("lcc %d, map %v", lcc.N(), mapping)
	}
	st := lcc.Stats()
	if st.N != 3 || st.M != 2 || st.MaxDegree != 2 {
		t.Fatalf("stats %+v", st)
	}
	if fast := lcc.StatsFast(); fast.Clustering != 0 {
		t.Fatal("StatsFast clustering")
	}
}

func TestPublicEdgeListIO(t *testing.T) {
	g := CycleGraph(6)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, labels, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 6 || h.M() != 6 || len(labels) != 6 {
		t.Fatal("round trip")
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := filepathCreate(path, g)
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	l, _, err := LoadEdgeList(path)
	if err != nil || l.M() != 6 {
		t.Fatalf("load err %v", err)
	}
}

// filepathCreate saves the graph via the internal writer for the load test.
func filepathCreate(path string, g *Graph) (struct{}, error) {
	return struct{}{}, g.inner().SaveEdgeList(path)
}

func TestExactIndexPublic(t *testing.T) {
	g := StarGraph(8)
	idx, err := NewExactIndex(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if r := idx.Resistance(1, 2); math.Abs(r-2) > 1e-9 {
		t.Fatalf("leaf-leaf r=%g", r)
	}
	v := idx.Eccentricity(0)
	if math.Abs(v.Value-1) > 1e-9 || v.Node != 0 {
		t.Fatalf("hub ecc %+v", v)
	}
	vals, err := idx.Query([]int{0, 1})
	if err != nil || len(vals) != 2 {
		t.Fatalf("batch: %v %v", vals, err)
	}
	if _, err := idx.Query([]int{0, 99}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("out-of-range batch: %v", err)
	}
	dist := idx.Distribution()
	sum := Summarize(dist)
	if math.Abs(sum.Radius-1) > 1e-9 || math.Abs(sum.Diameter-2) > 1e-9 {
		t.Fatalf("summary %+v", sum)
	}
	if len(sum.Center) != 1 || sum.Center[0] != 0 {
		t.Fatalf("center %v", sum.Center)
	}
	// Disconnected rejected.
	d := NewGraph(3)
	if _, err := NewExactIndex(context.Background(), d); err == nil {
		t.Fatal("disconnected must fail")
	}
}

func TestApproxAndFastIndexPublic(t *testing.T) {
	g, err := BarabasiAlbert(150, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewExactIndex(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	opt := SketchOptions{Epsilon: 0.3, Dim: 256, Seed: 5}
	ap, err := NewApproxIndex(context.Background(), g, WithSketchOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	if ap.SketchDim() != 256 {
		t.Fatalf("dim %d", ap.SketchDim())
	}
	fast, err := NewFastIndex(context.Background(), g, WithSketchOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	if fast.SketchDim() != 256 || fast.BoundarySize() == 0 {
		t.Fatal("fast index metadata")
	}
	if b := fast.Boundary(); len(b) != fast.BoundarySize() {
		t.Fatal("boundary copy")
	}
	exD := exact.Distribution()
	for _, v := range []int{0, 33, 149} {
		a := ap.Eccentricity(v).Value
		f := fast.Eccentricity(v).Value
		e := exD[v]
		if math.Abs(a-e)/e > 0.35 || math.Abs(f-e)/e > 0.35 {
			t.Fatalf("node %d: exact %g approx %g fast %g", v, e, a, f)
		}
	}
	sigma, err := RelativeError(fast.Distribution(), exD)
	if err != nil {
		t.Fatal(err)
	}
	if sigma > 0.2 {
		t.Fatalf("fast sigma %g", sigma)
	}
	if rr := ap.Resistance(0, 1); rr <= 0 {
		t.Fatal("sketched resistance")
	}
	if rr := fast.Resistance(0, 1); rr <= 0 {
		t.Fatal("fast sketched resistance")
	}
	if got, err := ap.Query([]int{1, 2}); err != nil || len(got) != 2 {
		t.Fatalf("approx batch: %v %v", got, err)
	}
	if got, err := fast.Query([]int{1, 2}); err != nil || len(got) != 2 {
		t.Fatalf("fast batch: %v %v", got, err)
	}
	if len(ap.Distribution()) != g.N() {
		t.Fatal("approx distribution")
	}
	if TheoreticalSketchDim(1000, 0.3) <= 0 {
		t.Fatal("theoretical dim")
	}
	if _, err := NewFastIndex(context.Background(), g); err == nil {
		t.Fatal("missing epsilon must fail")
	}
}

func TestOptimizePublic(t *testing.T) {
	g := PathGraph(8)
	s := 0
	plan, err := GreedyExact(g, REMD, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Problem != REMD || plan.Source != s || len(plan.Edges) != 2 {
		t.Fatalf("plan %+v", plan)
	}
	traj, err := plan.ExactTrajectory(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 3 || traj[2] >= traj[0] {
		t.Fatalf("trajectory %v", traj)
	}
	h, err := plan.Apply(g, -1)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != g.M()+2 {
		t.Fatal("apply count")
	}
	optPlan, optVal, err := Exhaustive(g, REMD, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(optPlan.Edges) != 1 || optVal <= 0 {
		t.Fatalf("exhaustive %v %g", optPlan.Edges, optVal)
	}
	// Greedy k=1 equals OPT k=1.
	g1, err := GreedyExact(g, REMD, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := g1.ExactTrajectory(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1[1]-optVal) > 1e-9 {
		t.Fatalf("greedy k=1 %g vs OPT %g", t1[1], optVal)
	}

	opt := OptimizeOptions{Sketch: SketchOptions{Epsilon: 0.3, Dim: 96, Seed: 2}, Hull: HullOptions{MaxVertices: 10}}
	for name, run := range map[string]func(context.Context, *Graph, int, int, OptimizeOptions) (*Plan, error){
		"FarMinRecc": FarMinRecc,
		"CenMinRecc": CenMinRecc,
		"ChMinRecc":  ChMinRecc,
		"MinRecc":    MinRecc,
	} {
		p, err := run(context.Background(), g, s, 2, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := p.ExactTrajectory(g)
		if err != nil {
			t.Fatalf("%s trajectory: %v", name, err)
		}
		if tr[len(tr)-1] >= tr[0] {
			t.Fatalf("%s made no progress: %v", name, tr)
		}
	}
}

func TestBaselinesPublic(t *testing.T) {
	g, err := BarabasiAlbert(60, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Baseline{BaselineDegree, BaselinePageRank, BaselinePath, BaselineRandom} {
		for _, p := range []Problem{REMD, REM} {
			plan, err := RunBaseline(g, b, p, 5, 2, 7)
			if err != nil {
				t.Fatalf("%v/%v: %v", b, p, err)
			}
			if len(plan.Edges) != 2 {
				t.Fatalf("%v/%v edges %v", b, p, plan.Edges)
			}
		}
		if b.String() == "" {
			t.Fatal("baseline stringer")
		}
	}
	if _, err := RunBaseline(g, Baseline(99), REMD, 0, 1, 1); err == nil {
		t.Fatal("unknown baseline")
	}
	if REMD.String() != "REMD" || REM.String() != "REM" {
		t.Fatal("problem stringer")
	}
}

func TestFitBurrPublic(t *testing.T) {
	g, err := PowerlawCluster(400, 3, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewExactIndex(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	dist := idx.Distribution()
	fit, err := FitBurr(dist)
	if err != nil {
		t.Fatal(err)
	}
	if fit.C <= 0 || fit.K <= 0 || fit.Lambda <= 0 {
		t.Fatalf("fit %+v", fit)
	}
	if fit.KS > 0.35 {
		t.Fatalf("KS %g", fit.KS)
	}
	med := Summarize(dist).Mean
	if fit.PDF(med) <= 0 {
		t.Fatalf("pdf at data mean %g is %g (fit %+v)", med, fit.PDF(med), fit)
	}
	if c := fit.CDF(med * 100); c < 0.9 {
		t.Fatalf("cdf tail %g", c)
	}
	if _, err := FitBurr([]float64{1}); err == nil {
		t.Fatal("too few samples")
	}
}

func TestDistributionParallelPublic(t *testing.T) {
	g, err := BarabasiAlbert(150, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewFastIndex(context.Background(), g, WithEpsilon(0.3), WithDim(64), WithSeed(8), WithMaxHullVertices(16))
	if err != nil {
		t.Fatal(err)
	}
	serial := fi.Distribution()
	par := fi.DistributionParallel(4)
	for v := range serial {
		if serial[v] != par[v] {
			t.Fatalf("node %d: %g vs %g", v, serial[v], par[v])
		}
	}
}

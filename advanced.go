package resistecc

import (
	"context"
	"math/rand"

	"resistecc/internal/eigen"
	"resistecc/internal/hitting"
	"resistecc/internal/solver"
	"resistecc/internal/sparsify"
	"resistecc/internal/ust"
)

// HittingTimes returns h[u] = H(u, target), the expected number of
// random-walk steps from u to target, for every source u — one Laplacian
// solve (Õ(m)) for the whole column. The commute identity
// H(u,v) + H(v,u) = 2m·r(u,v) ties these to resistance distances.
func (gr *Graph) HittingTimes(target int) ([]float64, error) {
	return hitting.ToTarget(gr.g, target, solver.Options{})
}

// HittingTime returns H(u, v).
func (gr *Graph) HittingTime(u, v int) (float64, error) {
	return hitting.Between(gr.g, u, v, solver.Options{})
}

// AlgebraicConnectivity returns λ₂, the smallest non-zero Laplacian
// eigenvalue, by inverse power iteration (near-linear per step). It bounds
// every resistance quantity: r(u,v) ≤ 2/λ₂, so c(v) ≤ 2/λ₂ and R(G) ≤ 2/λ₂.
func (gr *Graph) AlgebraicConnectivity(seed int64) (float64, error) {
	return eigen.LambdaTwo(gr.g.ToCSR(), eigen.Options{Seed: seed})
}

// LaplacianSpectralRadius returns λ_max of the Laplacian by power iteration.
func (gr *Graph) LaplacianSpectralRadius(seed int64) (float64, error) {
	return eigen.LambdaMax(gr.g.ToCSR(), eigen.Options{Seed: seed})
}

// FiedlerVector returns the (approximate, unit-norm, mean-zero) eigenvector
// of λ₂, useful for spectral layout and bisection diagnostics.
func (gr *Graph) FiedlerVector(seed int64) ([]float64, error) {
	return eigen.FiedlerVector(gr.g.ToCSR(), eigen.Options{Seed: seed})
}

// UniformSpanningTree samples a uniform spanning tree with Wilson's
// loop-erased-random-walk algorithm, returning parent[v] (−1 at the root).
func (gr *Graph) UniformSpanningTree(root int, seed int64) ([]int, error) {
	parent, err := ust.Sample(gr.g, root, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	out := make([]int, len(parent))
	for i, p := range parent {
		out[i] = int(p)
	}
	return out, nil
}

// SpanningEdgeCentrality estimates, for every edge in canonical order (see
// Edges), the probability that the edge appears in a uniform spanning tree —
// which equals its effective resistance r(e). `trees` Monte-Carlo samples
// give a per-edge standard error ≤ 1/(2√trees).
func (gr *Graph) SpanningEdgeCentrality(trees int, seed int64) ([]float64, error) {
	return ust.SpanningEdgeCentrality(gr.g, trees, seed)
}

// CountSpanningTrees returns the exact spanning-tree count via Kirchhoff's
// matrix-tree theorem. O(n³); for small graphs.
func (gr *Graph) CountSpanningTrees() (float64, error) {
	return ust.CountSpanningTrees(gr.g)
}

// SparsifyOptions configures spectral sparsification.
type SparsifyOptions struct {
	// Epsilon is the spectral approximation target ∈ (0,1).
	Epsilon float64
	// Samples overrides the sample budget (0 = ⌈9 n ln n/ε²⌉).
	Samples int
	// Seed fixes the sketch and the sampling.
	Seed int64
}

// Sparsifier is a weighted spectral sparsifier H of a graph G: its weighted
// Laplacian satisfies (1±ε)-multiplicative closeness to G's, preserving all
// effective resistances and hence resistance eccentricities.
type Sparsifier struct {
	h *solver.WeightedCSR
	// Samples is the number of draws taken; EdgeCount the distinct edges kept.
	Samples   int
	EdgeCount int
}

// Sparsify builds a Spielman–Srivastava effective-resistance sparsifier.
// ctx cancels the leverage-score sketch build.
func (gr *Graph) Sparsify(ctx context.Context, opt SparsifyOptions) (*Sparsifier, error) {
	res, err := sparsify.Sparsify(ctx, gr.g, sparsify.Options{
		Epsilon: opt.Epsilon, Samples: opt.Samples, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Sparsifier{h: res.H, Samples: res.Samples, EdgeCount: res.SampledEdges}, nil
}

// Resistance solves for the effective resistance between u and v on the
// sparsifier's weighted Laplacian.
func (s *Sparsifier) Resistance(u, v int) (float64, error) {
	wl, err := solver.NewWeightedLap(s.h, solver.Options{})
	if err != nil {
		return 0, err
	}
	return wl.Resistance(u, v)
}

// WeightedEdges returns the sparsifier's edges and weights.
func (s *Sparsifier) WeightedEdges() ([][2]int, []float64) {
	edges, ws := s.h.Edges()
	out := make([][2]int, len(edges))
	for i, e := range edges {
		out[i] = [2]int{e.U, e.V}
	}
	return out, ws
}

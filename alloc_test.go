package resistecc

import (
	"context"
	"testing"
)

// queryAllocIndex builds one small FastIndex for the allocation guards.
func queryAllocIndex(tb testing.TB) *FastIndex {
	tb.Helper()
	g, err := BarabasiAlbert(400, 3, 7)
	if err != nil {
		tb.Fatal(err)
	}
	ix, err := NewFastIndex(context.Background(), g,
		WithEpsilon(0.3), WithDim(32), WithSeed(7), WithMaxHullVertices(24))
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

// TestQueryZeroAllocs guards the //recclint:hotpath contract dynamically:
// the per-query hull scan (FastIndex.Eccentricity → sketch.EccentricityOver
// → sketch.Resistance) must not allocate. The hotpath analyzer rejects
// allocation syntax statically; this test catches what slips past it, such
// as compiler-inserted escapes.
func TestQueryZeroAllocs(t *testing.T) {
	ix := queryAllocIndex(t)
	n := ix.N()
	var sink Eccentricity
	avg := testing.AllocsPerRun(200, func() {
		sink = ix.Eccentricity(11 % n)
		sink = ix.Eccentricity(123 % n)
	})
	if avg != 0 {
		t.Errorf("FastIndex.Eccentricity allocates %.1f times per run, want 0", avg)
	}
	_ = sink
}

// TestBatchQueryZeroAllocs extends the hotpath contract to the batch engine:
// after warm-up (pool population + scratch high-water mark), QueryBatch with
// a reused buffer — dedup, blocked kernel, fan-out, conversion — must not
// allocate at all.
func TestBatchQueryZeroAllocs(t *testing.T) {
	ix := queryAllocIndex(t)
	n := ix.N()
	nodes := []int{11 % n, 123 % n, 11 % n, 57 % n, 201 % n, 33 % n, 57 % n, 9 % n}
	buf := GetBatchBuf()
	defer buf.Release()
	var sink []Eccentricity
	var err error
	// Warm-up establishes the buffer's high-water mark.
	if sink, err = ix.QueryBatch(nodes, buf); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		sink, err = ix.QueryBatch(nodes, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("FastIndex.QueryBatch allocates %.1f times per run, want 0", avg)
	}

	// A large batch spills onto the shared worker pool; after warm-up the
	// sharded path (jobs, join point, channel handoff) must also be free of
	// heap allocations.
	large := make([]int, 256)
	for i := range large {
		large[i] = (i * 3) % n
	}
	if sink, err = ix.QueryBatch(large, buf); err != nil {
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(200, func() {
		sink, err = ix.QueryBatch(large, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("sharded QueryBatch allocates %.1f times per run, want 0", avg)
	}
	_ = sink
}

// BenchmarkQueryAllocs reports per-query time and allocations for the hull
// scan; run with -benchmem and expect 0 allocs/op.
func BenchmarkQueryAllocs(b *testing.B) {
	ix := queryAllocIndex(b)
	n := ix.N()
	b.ReportAllocs()
	b.ResetTimer()
	var sink Eccentricity
	for i := 0; i < b.N; i++ {
		sink = ix.Eccentricity(i % n)
	}
	_ = sink
}

package resistecc

import (
	"context"
	"testing"
)

// queryAllocIndex builds one small FastIndex for the allocation guards.
func queryAllocIndex(tb testing.TB) *FastIndex {
	tb.Helper()
	g, err := BarabasiAlbert(400, 3, 7)
	if err != nil {
		tb.Fatal(err)
	}
	ix, err := NewFastIndex(context.Background(), g,
		WithEpsilon(0.3), WithDim(32), WithSeed(7), WithMaxHullVertices(24))
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

// TestQueryZeroAllocs guards the //recclint:hotpath contract dynamically:
// the per-query hull scan (FastIndex.Eccentricity → sketch.EccentricityOver
// → sketch.Resistance) must not allocate. The hotpath analyzer rejects
// allocation syntax statically; this test catches what slips past it, such
// as compiler-inserted escapes.
func TestQueryZeroAllocs(t *testing.T) {
	ix := queryAllocIndex(t)
	n := ix.N()
	var sink Eccentricity
	avg := testing.AllocsPerRun(200, func() {
		sink = ix.Eccentricity(11 % n)
		sink = ix.Eccentricity(123 % n)
	})
	if avg != 0 {
		t.Errorf("FastIndex.Eccentricity allocates %.1f times per run, want 0", avg)
	}
	_ = sink
}

// BenchmarkQueryAllocs reports per-query time and allocations for the hull
// scan; run with -benchmem and expect 0 allocs/op.
func BenchmarkQueryAllocs(b *testing.B) {
	ix := queryAllocIndex(b)
	n := ix.N()
	b.ReportAllocs()
	b.ResetTimer()
	var sink Eccentricity
	for i := 0; i < b.N; i++ {
		sink = ix.Eccentricity(i % n)
	}
	_ = sink
}

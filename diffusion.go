package resistecc

import (
	"resistecc/internal/diffusion"
	"resistecc/internal/stats"
)

// SpreadOptions configures the SI epidemic simulator.
type SpreadOptions struct {
	// Beta is the per-edge per-step transmission probability (default 0.5).
	Beta float64
	// Runs averages this many simulations (default 32).
	Runs int
	// MaxSteps caps each simulation (default 4n).
	MaxSteps int
	// Seed fixes the randomness.
	Seed int64
}

// SpreadResult summarizes an averaged susceptible–infected spread.
type SpreadResult struct {
	Seed           int
	MeanSaturation float64 // mean steps to infect everyone
	MeanHalf       float64 // mean steps to infect half the network
	Coverage       float64 // mean infected fraction at the horizon
}

// SimulateSpread runs a discrete-time SI epidemic from the seed node — the
// application setting (disease propagation, ref [20] of the paper) in which
// resistance eccentricity ranks node influence: small c(v) ⇒ fast spread.
func (gr *Graph) SimulateSpread(seed int, opt SpreadOptions) (*SpreadResult, error) {
	r, err := diffusion.SimulateSI(gr.g, seed, diffusion.SIOptions{
		Beta: opt.Beta, Runs: opt.Runs, MaxSteps: opt.MaxSteps, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &SpreadResult{
		Seed: r.Seed, MeanSaturation: r.MeanSaturation,
		MeanHalf: r.MeanHalf, Coverage: r.Coverage,
	}, nil
}

// SpreadSaturationTimes returns the mean SI saturation time for each seed.
func (gr *Graph) SpreadSaturationTimes(seeds []int, opt SpreadOptions) ([]float64, error) {
	return diffusion.SaturationTimes(gr.g, seeds, diffusion.SIOptions{
		Beta: opt.Beta, Runs: opt.Runs, MaxSteps: opt.MaxSteps, Seed: opt.Seed,
	})
}

// Spearman returns the Spearman rank correlation of two aligned samples —
// the statistic used to quantify how well c(v) predicts spread times.
func Spearman(x, y []float64) (float64, error) { return stats.Spearman(x, y) }

// Pearson returns the Pearson linear correlation of two aligned samples.
func Pearson(x, y []float64) (float64, error) { return stats.Pearson(x, y) }

package resistecc

import (
	"sync"

	"resistecc/internal/ecc"
)

// BatchBuf owns the scratch of a batch query — the dedup index and kernel
// outputs of the internal engine plus the []Eccentricity handed back to the
// caller. Reusing one across calls makes QueryBatch allocation-free in
// steady state (after the first call at the largest batch size seen). A
// buffer serves one goroutine at a time; the slice returned by QueryBatch is
// valid until the buffer's next use or Release.
type BatchBuf struct {
	qb  *ecc.QueryBuf
	out []Eccentricity
}

var batchBufPool = sync.Pool{
	New: func() any { return &BatchBuf{qb: ecc.GetQueryBuf()} },
}

// GetBatchBuf returns a pooled buffer for QueryBatch. Pair with Release.
func GetBatchBuf() *BatchBuf { return batchBufPool.Get().(*BatchBuf) }

// Release recycles the buffer. Results returned from it become invalid.
func (b *BatchBuf) Release() { batchBufPool.Put(b) }

func (b *BatchBuf) growOut(n int) { b.out = make([]Eccentricity, n) }

// fill converts the engine's values into the caller-facing slice without
// allocating (past the high-water mark).
//
//recclint:hotpath
func (b *BatchBuf) fill(vals []ecc.Value) []Eccentricity {
	if cap(b.out) < len(vals) {
		b.growOut(len(vals))
	}
	out := b.out[:len(vals)]
	for i, v := range vals {
		out[i] = Eccentricity{Node: v.Node, Value: v.Ecc, Farthest: v.Farthest}
	}
	return out
}

// QueryBatch answers a batch of FASTQUERY eccentricity queries through the
// blocked kernel: repeated ids are answered from one evaluation and one hull
// scan is amortized across the whole batch. Results are bit-identical to
// Query and per-node Eccentricity calls, in request order; the returned
// slice is owned by buf. Any node outside [0, n) fails the whole batch with
// ErrNodeOutOfRange.
//
//recclint:hotpath
func (ix *FastIndex) QueryBatch(nodes []int, buf *BatchBuf) ([]Eccentricity, error) {
	if err := validateNodes(nodes, ix.N()); err != nil {
		return nil, err
	}
	return buf.fill(ix.f.QueryBatch(nodes, buf.qb)), nil
}

// QueryBatch is the batched APPROXQUERY: like FastIndex.QueryBatch but each
// unique node scans all n embeddings instead of the hull boundary.
//
//recclint:hotpath
func (ix *ApproxIndex) QueryBatch(nodes []int, buf *BatchBuf) ([]Eccentricity, error) {
	if err := validateNodes(nodes, ix.N()); err != nil {
		return nil, err
	}
	return buf.fill(ix.ap.QueryBatch(nodes, buf.qb)), nil
}

// QueryBatch is the batched EXACTQUERY: repeated ids in the batch are
// deduplicated before the O(n) per-node pinv scans.
func (ix *ExactIndex) QueryBatch(nodes []int, buf *BatchBuf) ([]Eccentricity, error) {
	if err := validateNodes(nodes, ix.N()); err != nil {
		return nil, err
	}
	return buf.fill(ix.ex.QueryBatch(nodes, buf.qb)), nil
}

// Query answers a batch of eccentricity queries against the current
// generation. Equivalent to Snapshot().Index.Query(nodes) without pinning a
// snapshot.
func (d *DynamicIndex) Query(nodes []int) ([]Eccentricity, error) {
	fi := FastIndex{f: d.m.Current().Fast}
	return fi.Query(nodes)
}

// QueryBatch answers a batch of eccentricity queries against the current
// generation through the blocked kernel, allocation-free in steady state.
// All nodes in the batch are answered by the same generation; callers
// needing a consistent view across multiple calls should pin a Snapshot and
// use its Index instead.
//
//recclint:hotpath
func (d *DynamicIndex) QueryBatch(nodes []int, buf *BatchBuf) ([]Eccentricity, error) {
	fi := FastIndex{f: d.m.Current().Fast}
	return fi.QueryBatch(nodes, buf)
}

// Package resistecc is a Go implementation of the algorithms from
// "Resistance Eccentricity in Graphs: Distribution, Computation and
// Optimization" (Lu, Zhou, Zehmakan, Zhang — ICDE 2024).
//
// The resistance eccentricity of a node v in a connected graph is
// c(v) = max_u r(v,u), the largest effective resistance from v to any other
// node when every edge is a unit resistor. This package provides:
//
//   - Exact computation via the Laplacian pseudoinverse (EXACTQUERY).
//   - Near-linear-time (1±ε)-approximation via Johnson–Lindenstrauss
//     resistance sketches and approximate convex hulls (APPROXQUERY and
//     FASTQUERY), scaling to graphs where the O(n³) exact method is
//     infeasible.
//   - Distribution-level metrics: resistance radius, diameter, center, and
//     Burr Type XII fits of the eccentricity distribution.
//   - Optimization: choosing k edges to add so as to minimize c(s) of a
//     source node s, under the REMD regime (edges must touch s) and the REM
//     regime (arbitrary edges), with the paper's greedy heuristics
//     (Simple, FarMinRecc, CenMinRecc, ChMinRecc, MinRecc), exhaustive
//     optima for small instances, and the DE/PK/PATH/RAND baselines.
//
// # Quick start
//
//	g, _ := resistecc.BarabasiAlbert(2000, 4, 1)
//	idx, _ := g.NewFastIndex(resistecc.SketchOptions{Epsilon: 0.2, Dim: 64, Seed: 1})
//	v := idx.Eccentricity(0)
//	fmt.Printf("c(0) ≈ %.3f (farthest node %d)\n", v.Value, v.Farthest)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// mapping between paper sections and packages.
package resistecc

// Package resistecc is a Go implementation of the algorithms from
// "Resistance Eccentricity in Graphs: Distribution, Computation and
// Optimization" (Lu, Zhou, Zehmakan, Zhang — ICDE 2024).
//
// The resistance eccentricity of a node v in a connected graph is
// c(v) = max_u r(v,u), the largest effective resistance from v to any other
// node when every edge is a unit resistor. This package provides:
//
//   - Exact computation via the Laplacian pseudoinverse (EXACTQUERY).
//   - Near-linear-time (1±ε)-approximation via Johnson–Lindenstrauss
//     resistance sketches and approximate convex hulls (APPROXQUERY and
//     FASTQUERY), scaling to graphs where the O(n³) exact method is
//     infeasible.
//   - Distribution-level metrics: resistance radius, diameter, center, and
//     Burr Type XII fits of the eccentricity distribution.
//   - Optimization: choosing k edges to add so as to minimize c(s) of a
//     source node s, under the REMD regime (edges must touch s) and the REM
//     regime (arbitrary edges), with the paper's greedy heuristics
//     (Simple, FarMinRecc, CenMinRecc, ChMinRecc, MinRecc), exhaustive
//     optima for small instances, and the DE/PK/PATH/RAND baselines.
//   - Dynamic serving: DynamicIndex keeps a FastIndex live across online
//     edge mutations with generation-numbered immutable snapshots, rank-1
//     incremental sketch updates, and cancellable background rebuilds.
//
// # Quick start
//
//	g, _ := resistecc.BarabasiAlbert(2000, 4, 1)
//	idx, _ := resistecc.NewFastIndex(context.Background(), g,
//		resistecc.WithEpsilon(0.2), resistecc.WithDim(64), resistecc.WithSeed(1))
//	v := idx.Eccentricity(0)
//	fmt.Printf("c(0) ≈ %.3f (farthest node %d)\n", v.Value, v.Farthest)
//
// Index constructors take functional options (WithEpsilon, WithDim,
// WithSeed, WithWorkers, WithMaxHullVertices, ...) and a context that
// cancels the build. The former struct-based methods on *Graph remain as
// deprecated shims.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// mapping between paper sections and packages.
package resistecc

// Benchmarks regenerating the paper's tables and figures (one benchmark
// family per evaluation artifact) plus the DESIGN.md ablations. Run:
//
//	go test -bench=. -benchmem
//
// Sizes are scaled so the whole suite completes in minutes; EXPERIMENTS.md
// records a full `reccexp` run at larger scales. The structural comparisons
// (exact-vs-fast crossover, optimizer ranking) are what these benches
// preserve, not the paper's absolute wall-clock numbers.
package resistecc

import (
	"context"
	"sync"
	"testing"

	"resistecc/internal/dataset"
	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/linalg"
	"resistecc/internal/optimize"
	"resistecc/internal/pagerank"
	"resistecc/internal/sketch"
	"resistecc/internal/solver"
	"resistecc/internal/stats"
)

// benchGraphs caches proxies so every benchmark in a family sees the same
// input without repaying generation per run.
var benchGraphs sync.Map

func benchProxy(b *testing.B, name string, scale float64) *graph.Graph {
	b.Helper()
	key := name + "@" + string(rune(int('0')+int(scale*1000)%10)) // cheap cache key per (name,scale)
	type entry struct {
		g   *graph.Graph
		err error
	}
	if v, ok := benchGraphs.Load(key); ok {
		e := v.(entry)
		if e.err != nil {
			b.Fatal(e.err)
		}
		return e.g
	}
	in, err := dataset.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := in.Proxy(scale)
	benchGraphs.Store(key, entry{g, err})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchSketchOpts(dim int) sketch.Options {
	return sketch.Options{Epsilon: 0.3, Dim: dim, Seed: 1}
}

// --- Table I: exact radius/diameter of the distribution-analysis networks.

func BenchmarkTableI_ExactRadiusDiameter(b *testing.B) {
	g := benchProxy(b, "Politician", 0.05) // ≈ 300 nodes
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex, err := ecc.NewExact(g)
		if err != nil {
			b.Fatal(err)
		}
		sum := ecc.Summarize(ex.Distribution())
		if sum.Diameter < sum.Radius {
			b.Fatal("inconsistent summary")
		}
	}
}

// --- Figure 2: distribution histogram + Burr XII fit.

func BenchmarkFig2_DistributionAndBurrFit(b *testing.B) {
	g := benchProxy(b, "Government", 0.05)
	ex, err := ecc.NewExact(g)
	if err != nil {
		b.Fatal(err)
	}
	dist := ex.Distribution()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fit, err := stats.FitBurr(dist)
		if err != nil {
			b.Fatal(err)
		}
		if fit.C <= 0 {
			b.Fatal("bad fit")
		}
	}
}

// --- Table II: EXACTQUERY vs FASTQUERY full-distribution time, per ε.

func BenchmarkTableII_ExactQuery(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.5) // ≈ 570 nodes
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex, err := ecc.NewExact(g)
		if err != nil {
			b.Fatal(err)
		}
		_ = ex.Distribution()
	}
}

func benchFastQuery(b *testing.B, eps float64) {
	g := benchProxy(b, "EmailUN", 0.5)
	dim := int(12/(eps*eps)) + 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := ecc.NewFast(g, ecc.FastOptions{
			Sketch: sketch.Options{Epsilon: eps, Dim: dim, Seed: 1},
			Hull:   hull.Options{MaxVertices: 64},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = f.Distribution()
	}
}

func BenchmarkTableII_FastQuery_eps03(b *testing.B) { benchFastQuery(b, 0.3) }
func BenchmarkTableII_FastQuery_eps02(b *testing.B) { benchFastQuery(b, 0.2) }
func BenchmarkTableII_FastQuery_eps01(b *testing.B) { benchFastQuery(b, 0.1) }

// --- Figure 7: FASTQUERY distribution on a large-network proxy, where the
// exact method is out of reach.

func BenchmarkFig7_FastQueryLarge(b *testing.B) {
	g := benchProxy(b, "Web-baidu-baike", 0.002) // ≈ 4200 nodes
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := ecc.NewFast(g, ecc.FastOptions{
			Sketch: benchSketchOpts(64),
			Hull:   hull.Options{MaxVertices: 48},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = f.Distribution()
	}
}

// --- Figure 8: exhaustive optimum vs the exact greedy on a tiny sociogram.

func BenchmarkFig8_ExhaustiveOPT(b *testing.B) {
	g := benchProxy(b, "Kangaroo", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := optimize.Exhaustive(g, optimize.REMD, 0, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_SimpleGreedy(b *testing.B) {
	g := benchProxy(b, "Kangaroo", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optimize.Simple(g, optimize.REMD, 0, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 9 / Table III: one optimizer run per heuristic at k=5 on a
// mid-size proxy (relative ordering is the paper's reported shape:
// CenMinRecc fastest, MinRecc slowest and most effective).

func benchOptimizer(b *testing.B, run func(context.Context, *graph.Graph, int, int, optimize.FastOptions) (*optimize.Result, error)) {
	g := benchProxy(b, "EmailUN", 0.3)
	s := 0
	fopt := optimize.FastOptions{
		Sketch:        benchSketchOpts(48),
		Hull:          hull.Options{MaxVertices: 10},
		MaxCandidates: 8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(context.Background(), g, s, 5, fopt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII_FarMinRecc(b *testing.B) { benchOptimizer(b, optimize.FarMinRecc) }
func BenchmarkTableIII_CenMinRecc(b *testing.B) { benchOptimizer(b, optimize.CenMinRecc) }
func BenchmarkTableIII_ChMinRecc(b *testing.B)  { benchOptimizer(b, optimize.ChMinRecc) }
func BenchmarkTableIII_MinRecc(b *testing.B)    { benchOptimizer(b, optimize.MinRecc) }

func BenchmarkFig9_DEBaseline(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optimize.Degree(g, optimize.REM, 0, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_PKBaseline(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optimize.PageRank(g, optimize.REM, 0, 5, pagerank.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 1 (DESIGN.md): hull pruning on vs off at a fixed sketch.

func benchHullScan(b *testing.B, useHull bool) {
	g := benchProxy(b, "Politician", 0.1)
	f, err := ecc.NewFast(g, ecc.FastOptions{
		Sketch: benchSketchOpts(96),
		Hull:   hull.Options{MaxVertices: 48},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if useHull {
			_ = f.Distribution()
		} else {
			for v := 0; v < g.N(); v++ {
				f.Sk.Eccentricity(v)
			}
		}
	}
}

func BenchmarkAblationHull_Pruned(b *testing.B)   { benchHullScan(b, true) }
func BenchmarkAblationHull_FullScan(b *testing.B) { benchHullScan(b, false) }

// --- Ablation 2: sketch dimension.

func benchSketchDim(b *testing.B, dim int) {
	g := benchProxy(b, "EmailUN", 0.3)
	csr := g.ToCSR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sketch.NewContext(context.Background(), csr, benchSketchOpts(dim)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSketchDim32(b *testing.B)  { benchSketchDim(b, 32) }
func BenchmarkAblationSketchDim128(b *testing.B) { benchSketchDim(b, 128) }
func BenchmarkAblationSketchDim512(b *testing.B) { benchSketchDim(b, 512) }

// --- Ablation 3: solver preconditioners on a hard (path-like) instance.

func benchSolver(b *testing.B, pc solver.Preconditioner) {
	g := graph.Path(3000)
	csr := g.ToCSR()
	rhs := make([]float64, g.N())
	rhs[0], rhs[g.N()-1] = 1, -1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lap, err := solver.NewLap(csr, solver.Options{Precond: pc})
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, g.N())
		if _, err := lap.Solve(rhs, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSolverNone(b *testing.B)   { benchSolver(b, solver.None) }
func BenchmarkAblationSolverJacobi(b *testing.B) { benchSolver(b, solver.Jacobi) }
func BenchmarkAblationSolverSGS(b *testing.B)    { benchSolver(b, solver.SGS) }

// --- Ablation 4: Sherman–Morrison candidate scoring vs naive re-inversion.

func BenchmarkAblationShermanMorrison(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.2)
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		b.Fatal(err)
	}
	cands := g.SourceCandidates(0)[:32]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range cands {
			_ = linalg.ResistanceAfterEdge(lp, 0, g.N()-1, e.U, e.V)
		}
	}
}

func BenchmarkAblationNaiveReinversion(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.2)
	cands := g.SourceCandidates(0)[:4]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range cands {
			h := g.Clone()
			if err := h.AddEdge(e.U, e.V); err != nil {
				b.Fatal(err)
			}
			if _, err := linalg.Pseudoinverse(h); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Core kernels (profile-level benches used while tuning).

func BenchmarkKernelLapMul(b *testing.B) {
	g := benchProxy(b, "Government", 0.2)
	csr := g.ToCSR()
	x := make([]float64, g.N())
	y := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		csr.LapMul(x, y)
	}
}

func BenchmarkKernelSketchResistance(b *testing.B) {
	g := benchProxy(b, "EmailUN", 0.3)
	sk, err := sketch.NewContext(context.Background(), g.ToCSR(), benchSketchOpts(128))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sk.Resistance(i%g.N(), (i*7+1)%g.N())
	}
}

func BenchmarkKernelPseudoinverse(b *testing.B) {
	g := benchProxy(b, "Unicode-language", 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.Pseudoinverse(g); err != nil {
			b.Fatal(err)
		}
	}
}

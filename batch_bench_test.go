package resistecc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The batch benchmarks compare the batch engine against per-node queries on
// one shared mid-size index (build cost is paid once per `go test`
// invocation, not per sub-benchmark). `make bench-json` records them in
// BENCH_6.json.
//
// Two workloads are measured at each batch size:
//
//   - BenchmarkBatchQuery / BenchmarkBatchSerial: Zipf-skewed ids, the shape
//     of real serving traffic against a scale-free graph (hubs are queried
//     far more often than leaves). Repeated ids are where the engine's
//     per-batch dedup pays: the serial path scans the boundary once per
//     request, the batched path once per distinct id.
//   - the Distinct variants: all-distinct ids, the dedup-free worst case,
//     isolating what the blocked kernel and call-overhead amortization give
//     on their own.
//
// On multi-core machines batches past minParallelSources also shard across
// the engine's worker pool; single-core runs measure the pure kernel.
var (
	batchBenchOnce sync.Once
	batchBenchIx   *FastIndex
	batchBenchErr  error
)

func batchBenchIndex(b *testing.B) *FastIndex {
	b.Helper()
	batchBenchOnce.Do(func() {
		g, err := BarabasiAlbert(3000, 3, 17)
		if err != nil {
			batchBenchErr = err
			return
		}
		batchBenchIx, batchBenchErr = NewFastIndex(context.Background(), g,
			WithEpsilon(0.3), WithDim(64), WithSeed(17), WithMaxHullVertices(64))
	})
	if batchBenchErr != nil {
		b.Fatal(batchBenchErr)
	}
	return batchBenchIx
}

// batchBenchZipf draws a deterministic Zipf(1.2)-distributed id batch. The
// rank→id scatter keeps popular ids from being consecutive rows.
func batchBenchZipf(n, size int) []int {
	r := rand.New(rand.NewSource(42))
	z := rand.NewZipf(r, 1.2, 1, uint64(n-1))
	nodes := make([]int, size)
	for i := range nodes {
		nodes[i] = int(z.Uint64()*961748927+7) % n
	}
	return nodes
}

// batchBenchDistinct returns size distinct ids (size must be ≤ n).
func batchBenchDistinct(n, size int) []int {
	nodes := make([]int, size)
	for i := range nodes {
		nodes[i] = (i*2654435761 + 12345) % n
	}
	return nodes
}

var batchBenchSizes = []int{1, 16, 256}

func benchBatched(b *testing.B, ix *FastIndex, nodes []int) {
	b.Helper()
	buf := GetBatchBuf()
	defer buf.Release()
	if _, err := ix.QueryBatch(nodes, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.QueryBatch(nodes, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSerial(b *testing.B, ix *FastIndex, nodes []int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var sink Eccentricity
	for i := 0; i < b.N; i++ {
		for _, v := range nodes {
			sink = ix.Eccentricity(v)
		}
	}
	_ = sink
}

// BenchmarkBatchQuery measures the batched path on Zipf-skewed traffic:
// pooled buffer, dedup, blocked kernel (sharded past minParallelSources).
// ns/op is per batch; divide by the batch size for per-request cost.
func BenchmarkBatchQuery(b *testing.B) {
	ix := batchBenchIndex(b)
	for _, size := range batchBenchSizes {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			benchBatched(b, ix, batchBenchZipf(ix.N(), size))
		})
	}
}

// BenchmarkBatchSerial is the baseline the tentpole replaces: the same
// Zipf-skewed batch answered one boundary scan per request.
func BenchmarkBatchSerial(b *testing.B) {
	ix := batchBenchIndex(b)
	for _, size := range batchBenchSizes {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			benchSerial(b, ix, batchBenchZipf(ix.N(), size))
		})
	}
}

// BenchmarkBatchQueryDistinct is the dedup-free worst case: every id in the
// batch distinct, so the engine's win is kernel blocking and overhead
// amortization only.
func BenchmarkBatchQueryDistinct(b *testing.B) {
	ix := batchBenchIndex(b)
	for _, size := range batchBenchSizes {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			benchBatched(b, ix, batchBenchDistinct(ix.N(), size))
		})
	}
}

// BenchmarkBatchSerialDistinct is the per-node baseline on the same
// all-distinct batches.
func BenchmarkBatchSerialDistinct(b *testing.B) {
	ix := batchBenchIndex(b)
	for _, size := range batchBenchSizes {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			benchSerial(b, ix, batchBenchDistinct(ix.N(), size))
		})
	}
}

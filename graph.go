package resistecc

import (
	"io"

	"resistecc/internal/graph"
)

// Graph is a connected, undirected, unweighted simple graph — the object of
// study of the paper (§III-B). Nodes are 0..N()-1.
//
// Graph wraps the internal representation; construct instances with
// NewGraph, FromEdges, LoadEdgeList or one of the generators.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph with n isolated nodes.
func NewGraph(n int) *Graph { return &Graph{g: graph.New(n)} }

// FromEdges builds a graph with n nodes and the given (u, v) edges.
// Self-loops and duplicates are rejected.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	es := make([]graph.Edge, len(edges))
	for i, e := range edges {
		es[i] = graph.Edge{U: e[0], V: e[1]}
	}
	g, err := graph.FromEdges(n, es)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadEdgeList reads a whitespace-separated edge-list file (KONECT /
// NetworkRepository style; '#' and '%' comments allowed). Node labels are
// compacted to 0..n-1; duplicates and self-loops are dropped. Returns the
// graph and the original labels indexed by compact node id.
func LoadEdgeList(path string) (*Graph, []int64, error) {
	g, labels, err := graph.LoadEdgeList(path)
	if err != nil {
		return nil, nil, err
	}
	return &Graph{g: g}, labels, nil
}

// ReadEdgeList parses an edge-list stream; see LoadEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	g, labels, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, nil, err
	}
	return &Graph{g: g}, labels, nil
}

// WriteEdgeList emits the graph as "u v" lines.
func (gr *Graph) WriteEdgeList(w io.Writer) error { return gr.g.WriteEdgeList(w) }

// N returns the node count.
func (gr *Graph) N() int { return gr.g.N() }

// M returns the undirected edge count.
func (gr *Graph) M() int { return gr.g.M() }

// Degree returns the degree of node u.
func (gr *Graph) Degree(u int) int { return gr.g.Degree(u) }

// HasEdge reports whether edge (u,v) is present.
func (gr *Graph) HasEdge(u, v int) bool { return gr.g.HasEdge(u, v) }

// AddEdge inserts the undirected edge (u,v); it fails on self-loops,
// duplicates and out-of-range nodes.
func (gr *Graph) AddEdge(u, v int) error { return gr.g.AddEdge(u, v) }

// RemoveEdge deletes the undirected edge (u,v) if present.
func (gr *Graph) RemoveEdge(u, v int) error { return gr.g.RemoveEdge(u, v) }

// Edges returns all edges as (u, v) pairs with u < v.
func (gr *Graph) Edges() [][2]int {
	es := gr.g.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// Neighbors returns the sorted neighbours of u as a fresh slice.
func (gr *Graph) Neighbors(u int) []int {
	ns := gr.g.Neighbors(u)
	out := make([]int, len(ns))
	for i, v := range ns {
		out[i] = int(v)
	}
	return out
}

// Clone returns a deep copy.
func (gr *Graph) Clone() *Graph { return &Graph{g: gr.g.Clone()} }

// Connected reports whether the graph is connected.
func (gr *Graph) Connected() bool { return gr.g.Connected() }

// LargestComponent extracts the largest connected component (relabelled to
// 0..k-1) and the mapping from new ids back to ids in the receiver — the
// paper's standard preprocessing step.
func (gr *Graph) LargestComponent() (*Graph, []int) {
	sub, mapping := gr.g.LargestComponent()
	return &Graph{g: sub}, mapping
}

// HopDistance returns BFS hop distances from src (-1 for unreachable).
func (gr *Graph) HopDistance(src int) []int { return gr.g.BFS(src) }

// GraphStats reports the structural statistics of Table I.
type GraphStats struct {
	N, M                 int
	AvgDegree            float64
	MinDegree, MaxDegree int
	PowerLawGamma        float64
	Clustering           float64
}

// Stats computes structural statistics (including the O(Σ deg²) exact mean
// clustering coefficient; use StatsFast on huge graphs).
func (gr *Graph) Stats() GraphStats { return convStats(gr.g.Summarize()) }

// StatsFast computes statistics without the clustering coefficient.
func (gr *Graph) StatsFast() GraphStats { return convStats(gr.g.SummarizeFast()) }

func convStats(s graph.Stats) GraphStats {
	return GraphStats{
		N: s.N, M: s.M, AvgDegree: s.AvgDegree,
		MinDegree: s.MinDegree, MaxDegree: s.MaxDegree,
		PowerLawGamma: s.PowerLawGamma, Clustering: s.Clustering,
	}
}

// inner exposes the internal graph to sibling files of this package.
func (gr *Graph) inner() *graph.Graph { return gr.g }

// wrapGraph adapts an internal graph.
func wrapGraph(g *graph.Graph) *Graph { return &Graph{g: g} }

// --- Generators (deterministic in their seed). ---

// PathGraph returns the n-node path 0-1-…-(n-1); Figure 1(a).
func PathGraph(n int) *Graph { return wrapGraph(graph.Path(n)) }

// CycleGraph returns the n-node cycle (n ≥ 3); Figure 1(b).
func CycleGraph(n int) *Graph { return wrapGraph(graph.Cycle(n)) }

// StarGraph returns the n-node star with hub 0; Figure 1(c).
func StarGraph(n int) *Graph { return wrapGraph(graph.Star(n)) }

// CompleteGraph returns K_n.
func CompleteGraph(n int) *Graph { return wrapGraph(graph.Complete(n)) }

// GridGraph returns the rows×cols lattice.
func GridGraph(rows, cols int) *Graph { return wrapGraph(graph.Grid(rows, cols)) }

// LollipopGraph returns K_k with a t-node path attached.
func LollipopGraph(k, t int) *Graph { return wrapGraph(graph.Lollipop(k, t)) }

// BarbellGraph returns two K_k cliques joined by a t-node path.
func BarbellGraph(k, t int) *Graph { return wrapGraph(graph.Barbell(k, t)) }

// BarabasiAlbert grows an n-node preferential-attachment scale-free graph
// with k links per new node.
func BarabasiAlbert(n, k int, seed int64) (*Graph, error) {
	return genSafe(func() *graph.Graph { return graph.BarabasiAlbert(n, k, seed) })
}

// PowerlawCluster grows a Holme–Kim scale-free graph with triangle
// probability tri — the proxy family for the paper's social networks.
func PowerlawCluster(n, k int, tri float64, seed int64) (*Graph, error) {
	return genSafe(func() *graph.Graph { return graph.PowerlawCluster(n, k, tri, seed) })
}

// ScaleFreeMixed grows a preferential-attachment scale-free graph whose
// per-node attachment count is uniform over [kmin, kmax] with Holme–Kim
// triangle closure — kmin = 1 yields the degree-1 pendant periphery of real
// networks (the source of the heavy eccentricity tail of §IV-B).
func ScaleFreeMixed(n, kmin, kmax int, tri float64, seed int64) (*Graph, error) {
	return genSafe(func() *graph.Graph { return graph.ScaleFreeMixed(n, kmin, kmax, tri, seed) })
}

// WattsStrogatz builds the small-world model (LCC of the rewired ring).
func WattsStrogatz(n, k int, beta float64, seed int64) (*Graph, error) {
	return genSafe(func() *graph.Graph { return graph.WattsStrogatz(n, k, beta, seed) })
}

// ErdosRenyi samples the LCC of G(n, p).
func ErdosRenyi(n int, p float64, seed int64) (*Graph, error) {
	return genSafe(func() *graph.Graph { return graph.ErdosRenyi(n, p, seed) })
}

// RandomConnected returns a connected random graph with exactly n nodes and
// m edges (m ≥ n−1).
func RandomConnected(n, m int, seed int64) (*Graph, error) {
	return genSafe(func() *graph.Graph { return graph.RandomConnected(n, m, seed) })
}

// genSafe converts generator panics (invalid parameters) into errors, so the
// public API is error-based as library code should be.
func genSafe(fn func() *graph.Graph) (g *Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = &genError{msg: r}
			}
			g = nil
		}
	}()
	return wrapGraph(fn()), nil
}

type genError struct{ msg any }

func (e *genError) Error() string {
	if s, ok := e.msg.(string); ok {
		return s
	}
	return "resistecc: invalid generator parameters"
}

package resistecc

import (
	"context"

	"resistecc/internal/lifecycle"
	"resistecc/internal/persist"
)

// ErrIndexClosed is returned by DynamicIndex mutations issued after Close.
var ErrIndexClosed = lifecycle.ErrClosed

// MutationMode reports how a DynamicIndex mutation reached the served index.
type MutationMode string

const (
	// MutationIncremental: the sketch embedding was patched by a rank-1
	// Sherman–Morrison update and a new generation published immediately.
	MutationIncremental MutationMode = MutationMode(lifecycle.ModeIncremental)
	// MutationStale: the mutation landed on the master graph but the served
	// index could not absorb it incrementally; answers lag until the
	// scheduled background rebuild swaps in.
	MutationStale MutationMode = MutationMode(lifecycle.ModeStale)
)

// MutationResult describes the outcome of one accepted mutation.
type MutationResult struct {
	// Generation serving the mutation (unchanged for MutationStale).
	Generation uint64
	// Mode is MutationIncremental or MutationStale.
	Mode MutationMode
	// Drift is the accumulated incremental-error bound after this mutation;
	// serving error stays within ε + Drift until the next rebuild resets it.
	Drift float64
	// RebuildScheduled reports whether a background rebuild is now pending.
	RebuildScheduled bool
}

// IndexSnapshot is one immutable generation of a DynamicIndex: a FastIndex
// plus the generation number and the graph shape it reflects. Snapshots
// remain valid (and answer queries) forever, even after newer generations
// swap in or the DynamicIndex is closed.
type IndexSnapshot struct {
	// Generation is the monotonically increasing index version.
	Generation uint64
	// Index answers queries for this generation.
	Index *FastIndex
	// N and M are the node and edge counts this generation reflects.
	N, M int
}

// DynamicStats is a point-in-time view of a DynamicIndex for health checks
// and metrics.
type DynamicStats struct {
	Generation         uint64
	QueueDepth         int
	Drift              float64
	Updates            int
	Deletions          int
	Stale              bool
	Rebuilds           uint64
	RebuildFailures    uint64
	RebuildScheduled   bool
	RebuildInProgress  bool
	LastRebuildSeconds float64
	GraphN, GraphM     int
	IndexN, IndexM     int
}

// DynamicIndex is a FastIndex that accepts online edge mutations. Queries
// always hit a complete immutable snapshot (RCU: no locks on the read path);
// AddEdge/RemoveEdge apply cheap incremental sketch updates when safe and
// fall back to a cancellable background rebuild once the accumulated drift,
// or the deletion count, crosses its threshold. A quiesced index (WaitIdle)
// serves exactly what a cold NewFastIndex of the current graph would.
//
// Build one with NewDynamicIndex; WithEpsilon is required, and
// WithDriftThreshold / WithMaxDeletions / WithMutationQueue tune the
// rebuild policy.
type DynamicIndex struct {
	m *lifecycle.Manager

	// Persistence state (see durable.go). params/baseFP identify what this
	// index serves; store is non-nil only for OpenDynamicIndex indexes.
	params persist.Params
	baseFP uint64
	store  *persist.Store
	hook   *persist.Hook
}

// NewDynamicIndex builds the initial index (generation 1) from g and starts
// the mutation and rebuild workers. The graph must be connected
// (ErrDisconnected otherwise); g is cloned, so later changes to it do not
// affect the index. ctx cancels the initial build and, after it, all
// background rebuilds; Close releases the workers.
func NewDynamicIndex(ctx context.Context, g *Graph, opts ...Option) (*DynamicIndex, error) {
	c := applyOptions(opts)
	m, err := lifecycle.New(ctx, g.inner(), lifecycle.Config{
		Sketch:         c.sk.internal(),
		Hull:           c.hull.internal(),
		DriftThreshold: c.driftThreshold,
		MaxDeletions:   c.maxDeletions,
		QueueSize:      c.queueSize,
		Follower:       c.follower,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{m: m, params: paramsOf(c), baseFP: persist.Fingerprint(g.inner())}, nil
}

// Snapshot returns the current served generation. The result is immutable;
// hold it across related queries for a consistent view.
func (d *DynamicIndex) Snapshot() *IndexSnapshot {
	s := d.m.Current()
	return &IndexSnapshot{
		Generation: s.Gen,
		Index:      &FastIndex{f: s.Fast},
		N:          s.N,
		M:          s.M,
	}
}

// AddEdge inserts the undirected edge (u, v). Rejected inputs surface as
// ErrNodeOutOfRange, ErrSelfLoop or ErrDuplicateEdge; ctx bounds the time
// spent waiting on the mutation queue.
func (d *DynamicIndex) AddEdge(ctx context.Context, u, v int) (MutationResult, error) {
	return convMutation(d.m.AddEdge(ctx, u, v))
}

// RemoveEdge deletes the undirected edge (u, v). A removal that would
// disconnect the graph is rejected with ErrDisconnected (resistance
// eccentricity is undefined across components); a missing edge is
// ErrEdgeNotFound.
func (d *DynamicIndex) RemoveEdge(ctx context.Context, u, v int) (MutationResult, error) {
	return convMutation(d.m.RemoveEdge(ctx, u, v))
}

func convMutation(r lifecycle.ApplyResult, err error) (MutationResult, error) {
	if err != nil {
		return MutationResult{}, err
	}
	return MutationResult{
		Generation:       r.Gen,
		Mode:             MutationMode(r.Mode),
		Drift:            r.Drift,
		RebuildScheduled: r.RebuildScheduled,
	}, nil
}

// TriggerRebuild schedules a background rebuild regardless of drift. A
// no-op on follower indexes (WithFollower), which never rebuild locally.
func (d *DynamicIndex) TriggerRebuild() { d.m.TriggerRebuild() }

// RebuildAndWait schedules a rebuild and blocks until the index settles,
// returning the generation that was serving when the rebuild was requested.
// Trace replay uses it to absorb a recorded rebuild synchronously before the
// next operation runs.
func (d *DynamicIndex) RebuildAndWait(ctx context.Context) (uint64, error) {
	return d.m.RebuildAndWait(ctx)
}

// Seq returns the number of mutations applied since the index's base state
// (zero for a fresh build, the snapshot's sequence plus applied mutations
// for a restored one). Replication uses it as the WAL tailing position.
func (d *DynamicIndex) Seq() uint64 { return d.m.Seq() }

// ReplicationStore exposes the durable store backing this index to the
// in-process replication layer (internal/repl serves snapshot and WAL-tail
// fetches over it); nil when the index has no data directory. TailSince and
// SnapshotBytes on the returned store are safe for concurrent use with
// serving and mutations.
func (d *DynamicIndex) ReplicationStore() *persist.Store { return d.store }

// WaitIdle blocks until no mutation is queued and no rebuild is pending or
// running — the point at which served answers match a cold rebuild.
func (d *DynamicIndex) WaitIdle(ctx context.Context) error { return d.m.WaitIdle(ctx) }

// Stats reports the lifecycle state for health and metrics endpoints.
func (d *DynamicIndex) Stats() DynamicStats {
	s := d.m.Stats()
	return DynamicStats{
		Generation:         s.Generation,
		QueueDepth:         s.QueueDepth,
		Drift:              s.Drift,
		Updates:            s.Updates,
		Deletions:          s.Deletions,
		Stale:              s.Stale,
		Rebuilds:           s.Rebuilds,
		RebuildFailures:    s.RebuildFailures,
		RebuildScheduled:   s.RebuildScheduled,
		RebuildInProgress:  s.RebuildInProgress,
		LastRebuildSeconds: s.LastRebuildSeconds,
		GraphN:             s.GraphN,
		GraphM:             s.GraphM,
		IndexN:             s.IndexN,
		IndexM:             s.IndexM,
	}
}

// Close stops the workers and rejects further mutations with ErrIndexClosed.
// Existing snapshots keep answering queries. For a durable index
// (OpenDynamicIndex) the store is closed too; Close does not checkpoint —
// unsnapshotted mutations are already safe in the WAL.
func (d *DynamicIndex) Close() {
	d.m.Close()
	if d.store != nil {
		d.store.Close()
	}
}

package resistecc

import (
	"resistecc/internal/linalg"
	"resistecc/internal/spectral"
	"resistecc/internal/stats"
)

// KirchhoffIndex returns Kf(G) = Σ_{u<v} r(u,v) exactly, via n·tr(L†).
// O(n³) — use EstimateKirchhoffIndex for large graphs.
func (gr *Graph) KirchhoffIndex() (float64, error) {
	lp, err := linalg.Pseudoinverse(gr.g)
	if err != nil {
		return 0, err
	}
	return spectral.KirchhoffExact(lp), nil
}

// KemenyConstant returns Kemeny's constant — the expected hitting time of a
// stationary-distributed target from any start, the quantity the paper's
// conclusion names as the next optimization target. Exact, O(n³).
func (gr *Graph) KemenyConstant() (float64, error) {
	lp, err := linalg.Pseudoinverse(gr.g)
	if err != nil {
		return 0, err
	}
	return spectral.KemenyExact(gr.g, lp), nil
}

// SpectralEstimateOptions configures the randomized invariant estimators.
type SpectralEstimateOptions struct {
	// Probes is the Hutchinson probe count (default 64); error ~ 1/√Probes.
	Probes int
	// Seed fixes the probes.
	Seed int64
}

// EstimateKirchhoffIndex estimates Kf(G) with Hutchinson trace probes, one
// Laplacian solve per probe — Õ(Probes·m) total.
func (gr *Graph) EstimateKirchhoffIndex(opt SpectralEstimateOptions) (float64, error) {
	return spectral.KirchhoffEstimate(gr.g, spectral.EstimateOptions{Probes: opt.Probes, Seed: opt.Seed})
}

// EstimateKemenyConstant estimates Kemeny's constant in Õ(Probes·m).
func (gr *Graph) EstimateKemenyConstant(opt SpectralEstimateOptions) (float64, error) {
	return spectral.KemenyEstimate(gr.g, spectral.EstimateOptions{Probes: opt.Probes, Seed: opt.Seed})
}

// ResistanceMC estimates r(u,v) by Monte-Carlo random-walk commute times
// (C(u,v) = 2m·r(u,v)) — an implementation-independent cross-check of the
// algebraic code paths. Standard error decreases as O(1/√walks).
func (gr *Graph) ResistanceMC(u, v, walks int, seed int64) (float64, error) {
	return stats.ResistanceMC(gr.g, u, v, walks, seed)
}

package resistecc

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// batchTestGraph is shared by the batch equivalence tests: small enough for
// the exact index, large enough for remainder lanes and duplicates.
func batchTestGraph(tb testing.TB) *Graph {
	tb.Helper()
	g, err := BarabasiAlbert(200, 3, 21)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

type batchIndex interface {
	Query(nodes []int) ([]Eccentricity, error)
	QueryBatch(nodes []int, buf *BatchBuf) ([]Eccentricity, error)
	Eccentricity(v int) Eccentricity
	N() int
}

// TestQueryBatchEquivalence pins, for all three index kinds, that QueryBatch
// equals Query equals per-node Eccentricity — bit-identical, in request
// order, with duplicates answered identically — and that out-of-range ids
// fail the whole batch with ErrNodeOutOfRange.
func TestQueryBatchEquivalence(t *testing.T) {
	g := batchTestGraph(t)
	ctx := context.Background()
	exact, err := NewExactIndex(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := NewApproxIndex(ctx, g, WithEpsilon(0.3), WithDim(32), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewFastIndex(ctx, g, WithEpsilon(0.3), WithDim(32), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]int{
		{},
		{42},
		{0, 1, 2, 3, 4, 5, 6},
		{13, 13, 13, 13},
		{199, 0, 73, 13, 73, 199, 5},
	}
	for name, ix := range map[string]batchIndex{"exact": exact, "approx": approx, "fast": fast} {
		buf := GetBatchBuf()
		for _, q := range batches {
			serial, err := ix.Query(q)
			if err != nil {
				t.Fatalf("%s Query(%v): %v", name, q, err)
			}
			batched, err := ix.QueryBatch(q, buf)
			if err != nil {
				t.Fatalf("%s QueryBatch(%v): %v", name, q, err)
			}
			if len(serial) != len(q) || len(batched) != len(q) {
				t.Fatalf("%s %v: lengths %d / %d", name, q, len(serial), len(batched))
			}
			for i := range q {
				if serial[i] != batched[i] || batched[i] != ix.Eccentricity(q[i]) {
					t.Fatalf("%s %v position %d: serial %+v batched %+v single %+v",
						name, q, i, serial[i], batched[i], ix.Eccentricity(q[i]))
				}
			}
		}
		for _, bad := range [][]int{{-1}, {ix.N()}, {0, 5, ix.N() + 3}} {
			if _, err := ix.QueryBatch(bad, buf); !errors.Is(err, ErrNodeOutOfRange) {
				t.Fatalf("%s QueryBatch(%v): err=%v, want ErrNodeOutOfRange", name, bad, err)
			}
			if _, err := ix.Query(bad); !errors.Is(err, ErrNodeOutOfRange) {
				t.Fatalf("%s Query(%v): err=%v, want ErrNodeOutOfRange", name, bad, err)
			}
		}
		buf.Release()
	}
}

// TestQueryBatchConcurrent hammers one FastIndex from several goroutines,
// each with its own pooled buffer; run under -race this pins that buffers
// are goroutine-local and the index read path is safe to share.
func TestQueryBatchConcurrent(t *testing.T) {
	g := batchTestGraph(t)
	ix, err := NewFastIndex(context.Background(), g, WithEpsilon(0.3), WithDim(32), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Query([]int{7, 7, 191, 0, 44})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := GetBatchBuf()
			defer buf.Release()
			for iter := 0; iter < 50; iter++ {
				got, err := ix.QueryBatch([]int{7, 7, 191, 0, 44}, buf)
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errs <- errors.New("concurrent batch diverged from serial answer")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDynamicQueryBatch pins DynamicIndex.Query/QueryBatch against the
// pinned-snapshot path on a quiesced index.
func TestDynamicQueryBatch(t *testing.T) {
	g := batchTestGraph(t)
	ctx := context.Background()
	d, err := NewDynamicIndex(ctx, g, WithEpsilon(0.3), WithDim(32), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	q := []int{3, 150, 3, 0, 99}
	want, err := d.Snapshot().Index.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	buf := GetBatchBuf()
	defer buf.Release()
	gotB, err := d.QueryBatch(q, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q {
		if got[i] != want[i] || gotB[i] != want[i] {
			t.Fatalf("position %d: Query %+v QueryBatch %+v snapshot %+v", i, got[i], gotB[i], want[i])
		}
	}
	if _, err := d.QueryBatch([]int{d.Snapshot().N}, buf); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("out-of-range: err=%v, want ErrNodeOutOfRange", err)
	}
}

// TestResistanceDiameterDegenerate pins the public surface of the Diameter
// satellite fix: ErrDegenerateHull, not a fake zero answer.
func TestResistanceDiameterDegenerate(t *testing.T) {
	// A single-node graph is the smallest index whose hull collapses to one
	// representative, leaving no boundary pair to scan.
	ix, err := NewFastIndex(context.Background(), PathGraph(1),
		WithEpsilon(0.3), WithDim(8), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.ResistanceDiameter(); !errors.Is(err, ErrDegenerateHull) {
		t.Fatalf("1-vertex hull: err=%v, want ErrDegenerateHull", err)
	}
	ok, err := NewFastIndex(context.Background(), batchTestGraph(t),
		WithEpsilon(0.3), WithDim(32), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if d, pair, err := ok.ResistanceDiameter(); err != nil || d <= 0 || pair[0] == pair[1] {
		t.Fatalf("real hull: d=%v pair=%v err=%v", d, pair, err)
	}
}
